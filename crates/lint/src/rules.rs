//! The invariant rule catalog and its token-stream engine.
//!
//! Each rule scans one tokenized file ([`SourceFile`]) and emits
//! [`Diagnostic`]s. Rules are deliberately syntactic: they match short
//! token sequences, never resolve names, and err on the side of firing —
//! a justified `[[allow]]` entry in `lint.toml` is the escape hatch, so
//! every exception is visible and explained in one checked-in file.
//!
//! The catalog (see DESIGN.md §5 for the rationale of each):
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | no `HashMap`/`HashSet` (unordered iteration) in deterministic crates |
//! | D2 | no `Instant`/`SystemTime`/`std::time` wall-clock reads |
//! | D3 | no ambient RNG (`thread_rng`, `rand::`) — only `rperf_sim::rng` forks |
//! | D4 | no `f64`/`f32` or raw `.0` arithmetic on quantity newtypes |
//! | D5 | no `unwrap`/`expect`/`panic!`/`todo!` in hot-loop crates |
//! | D6 | no `unsafe`, and every crate root carries `#![forbid(unsafe_code)]` |
//! | D7 | every `pub fn` in the event-API crate documents its contract |
//! | D8 | no environment reads (`env::var`) in result-producing paths |
//! | D9 | blocking sockets in the serving layer carry finite timeouts |
//! | D10 | cross-shard state travels only through the sim mailbox (no ad-hoc shared-mutable sync in shard-executed crates) |
//!
//! The interprocedural catalog (I1–I4) lives in [`crate::inter`] and
//! runs over the whole-workspace call graph instead of single token
//! streams; this module only registers the ids, hints, and `--explain`
//! text.

use crate::config::{Config, RuleCfg};
use crate::lexer::{lex, TokKind, Token};
use crate::parse::{self, ItemTree};

/// Every rule id the engine implements.
pub const KNOWN_IDS: &[&str] = &[
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "I1", "I2", "I3", "I4",
];

/// The built-in fix hint for `id`.
pub fn default_hint(id: &str) -> &'static str {
    match id {
        "D1" => "iteration order of std hash maps is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
        "D2" => "wall-clock reads break bit-identical replay; simulated time comes from rperf_sim::SimTime",
        "D3" => "ambient RNG ignores the experiment seed; fork a stream from rperf_sim::rng::SimRng",
        "D4" => "float rounding is platform/optimization sensitive; keep quantities in rperf_model::units newtypes and integer picoseconds/bytes (floats belong in rperf-stats)",
        "D5" => "a panic in the hot loop aborts the whole sweep; return a typed error or guard the invariant with `let .. else { debug_assert!(false, ..); .. }`",
        "D6" => "the workspace is 100% safe Rust; add #![forbid(unsafe_code)] to the crate root and rewrite the unsafe block",
        "D7" => "event-API callers rely on documented (time, seq) FIFO ordering; add a doc comment stating the ordering contract",
        "D8" => "environment variables make results depend on the shell; thread configuration through explicit arguments",
        "D9" => "a blocking socket read with no timeout lets one stalled peer wedge the thread forever; call set_read_timeout(Some(..))/set_write_timeout(Some(..)) right after accept/connect",
        "D10" => "shard worker domains may exchange state only through rperf_sim::shard::Mailbox envelopes, which the window scheduler merges in (time, seq) order; ad-hoc shared-mutable sync is a side channel the deterministic merge never sees",
        "I1" => "the call chain in the message shows how a result path reaches ambient input; thread the value through explicit arguments, or break the edge (the diagnostic points at the source, not the entry)",
        "I2" => "a panic anywhere in the reachable set aborts the whole sweep; return a typed error along the chain, or demote the check to debug_assert! (pruned from release reachability)",
        "I3" => "shard workers must not touch process-global state; move it into the shard's WorldState, or — for monotonic telemetry counters only — add an [[allow]] naming the atomic with a justification",
        "I4" => "callers inherit the (time, seq) ordering obligation of the API they call; copy the contract sentence into this fn's doc comment so the obligation stays visible at every layer",
        _ => "see DESIGN.md §5",
    }
}

/// The long-form `--explain <rule>` text: what the rule proves, how it
/// computes it, and how to fix or exempt a finding.
pub fn explain(id: &str) -> Option<&'static str> {
    let text = match id {
        "D1" => "D1 — no unordered containers.\n\nstd's HashMap/HashSet iterate in randomized order (SipHash with a\nper-process seed), so any result that folds over one is run-dependent.\nThe rule flags every HashMap/HashSet ident in scoped crates; use\nBTreeMap/BTreeSet or a sorted Vec.",
        "D2" => "D2 — no wall-clock reads.\n\nInstant/SystemTime/std::time make output depend on host speed and\ntime-of-day. Simulated time comes from rperf_sim::SimTime only. The\ntoken rule flags the type names; rule I1 additionally proves no figure\npath can *reach* a clock read through helpers.",
        "D3" => "D3 — no ambient RNG.\n\nthread_rng()/rand:: ignore the experiment seed, so reruns diverge.\nRandomness must be forked from rperf_sim::rng::SimRng, which is seeded\nby the scenario. I1 extends this check across call boundaries.",
        "D4" => "D4 — integer quantities.\n\nFloat rounding is platform- and optimization-sensitive; time and bytes\nstay in integer-picosecond/byte newtypes (rperf_model::units). Floats\nbelong in rperf-stats, after the deterministic part is done.",
        "D5" => "D5 — no panics in hot-loop crates (token-level).\n\nFlags .unwrap()/.expect()/panic!/todo!/unimplemented! anywhere in the\nscoped crates. Superseded for reachability precision by I2, which\nflags only panic sites the hot loop can actually reach.",
        "D6" => "D6 — no unsafe.\n\nThe workspace is 100% safe Rust; every crate root must carry\n#![forbid(unsafe_code)] so the compiler enforces it too.",
        "D7" => "D7 — documented event-API contracts.\n\nEvery pub fn in the event-API crate documents its ordering contract.\nI4 propagates the obligation to callers in other crates.",
        "D8" => "D8 — no environment reads.\n\nenv::var makes results depend on the invoking shell. Configuration is\nthreaded through explicit arguments. I1 extends the check to\nreachability from result-producing entries.",
        "D9" => "D9 — finite socket timeouts.\n\nA blocking read with no timeout lets one stalled peer wedge a serve\nworker forever. set_read_timeout(Some(..)) right after accept/connect;\nset_read_timeout(None) is flagged at the call site.",
        "D10" => "D10 — no shard side channels.\n\nCross-shard state travels only through rperf_sim::shard::Mailbox\nenvelopes, merged in (time, seq) order at window boundaries. Mutex/\nRwLock/RefCell/Cell/mpsc in shard-executed crates are side channels\nthe deterministic merge never sees. I3 adds reachability: statics\ntouched by code the shard windows can call.",
        "I1" => "I1 — taint reachability (interprocedural).\n\nSources: thread_rng()/rand::, Instant/SystemTime, env::var*/vars, and\nset_read_timeout(None)/set_write_timeout(None). The analyzer builds a\nconservative workspace call graph (see DESIGN.md §5.1), BFS-reaches\nfrom the configured `entries` (figure generators, executors, sweep\nrunners), and flags every source inside the reachable set — however\nmany helper crates deep. The message carries the shortest call chain\nthe graph knows from an entry to the offending function. Fix by\nthreading the value through arguments; exempt with a justified\n[[allow]] pinned to the site.",
        "I2" => "I2 — panic reachability (interprocedural).\n\nFlags panic!/todo!/unimplemented! and .unwrap()/.expect() in any\nfunction reachable from the hot-loop entries (`entries` in lint.toml:\nWorldState::handle_one, run/run_budgeted, shard window bodies).\nPruning: #[cfg(test)] items are not graph nodes, debug_assert! bodies\nare skipped (they vanish in release builds), and code gated by an\n`off_features` feature is invisible. Unlike D5's per-crate blanket,\nan unreachable panic in the same crate is fine. Method-name call edges\nover-approximate: a panic in a same-named method of an unrelated type\ncan be flagged — silence that with a justified [[allow]].",
        "I3" => "I3 — shard purity (interprocedural).\n\nShard worker windows replay deterministically only if shard-executed\ncode touches no process-global state. The analyzer reaches from the\nshard window entries and flags every `static` referenced by reachable\ncode, one diagnostic per (static, file). The only sanctioned\nexception is monotonic telemetry (Atomic* counters folded after the\nrun) — exempt those via [[allow]] entries naming the counter, so each\nexemption carries a justification.",
        "I4" => "I4 — ordering-contract propagation (interprocedural).\n\nA pub fn that (exactly) calls a contract-documented function of the\nevent-API crate (`api_crate`, default `sim`) must itself carry a doc\ncomment stating the ordering contract (any of: 'order', 'FIFO',\n'(time, seq)', 'deterministic', case-insensitive). This closes D7's\none-crate scope: the obligation follows the call graph outward.\nName-level method edges are deliberately excluded — they would demand\nordering docs from every Vec::push caller.",
        _ => return None,
    };
    Some(text)
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id, e.g. `D5`.
    pub rule: &'static str,
    /// What is wrong.
    pub msg: String,
    /// The full offending source line.
    pub line_text: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Renders the three-line human form:
    ///
    /// ```text
    /// crates/sim/src/run.rs:90:33: [D5] hot-loop crate `sim` calls `.expect()`
    ///     | let (now, ev) = q.pop().expect("peeked event vanished");
    ///     = help: return a typed error ...
    /// ```
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    | {}\n    = help: {}\n",
            self.path,
            self.line,
            self.col,
            self.rule,
            self.msg,
            self.line_text.trim_end(),
            self.hint
        )
    }

    /// The sort key: file, then position, then rule.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule)
    }
}

/// One tokenized file plus the derived facts rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Which crate the file belongs to: the directory name under
    /// `crates/` (`sim`, `switch`, …) or `root` for the top-level package.
    pub crate_key: String,
    /// Last path component (`run.rs`).
    pub file_name: String,
    /// True for `src/lib.rs`, `src/main.rs` and `src/bin/*.rs`.
    pub is_crate_root: bool,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub sig: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: Vec<bool>,
    /// Source lines (for diagnostics).
    pub lines: Vec<String>,
    /// The parsed item tree (fns, statics, uses) for the call graph.
    pub tree: ItemTree,
}

impl SourceFile {
    /// Tokenizes `src`, computes the test-region mask, and parses the
    /// item tree.
    pub fn analyze(path: &str, crate_key: &str, is_crate_root: bool, src: &str) -> SourceFile {
        let tokens = lex(src);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::Comment | TokKind::DocComment))
            .map(|(i, _)| i)
            .collect::<Vec<_>>();
        let in_test = test_mask(&tokens, &sig);
        let tree = parse::parse(&tokens);
        SourceFile {
            path: path.to_string(),
            crate_key: crate_key.to_string(),
            file_name: path.rsplit('/').next().unwrap_or(path).to_string(),
            is_crate_root,
            tokens,
            sig,
            in_test,
            lines: src.lines().map(str::to_string).collect(),
            tree,
        }
    }

    fn line_text(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .cloned()
            .unwrap_or_default()
    }

    fn diag(&self, rule: &'static str, tok: &Token, msg: String, cfg: &RuleCfg) -> Diagnostic {
        Diagnostic {
            path: self.path.clone(),
            line: tok.line,
            col: tok.col,
            rule,
            msg,
            line_text: self.line_text(tok.line),
            hint: cfg
                .hint
                .clone()
                .unwrap_or_else(|| default_hint(rule).to_string()),
        }
    }

    /// The significant token at `sig[s]`, if in range.
    fn at(&self, s: usize) -> Option<&Token> {
        self.sig.get(s).map(|&i| &self.tokens[i])
    }

    /// True when the significant token at `sig[s]` is in a test region.
    fn test_at(&self, s: usize) -> bool {
        self.sig.get(s).is_some_and(|&i| self.in_test[i])
    }
}

/// Computes which tokens sit inside `#[cfg(test)]`- or `#[test]`-gated
/// items. `sig` is the list of non-comment token indices.
fn test_mask(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut s = 0usize;
    while s < sig.len() {
        if !(tokens[sig[s]].is_punct('#')
            && sig.get(s + 1).is_some_and(|&j| tokens[j].is_punct('[')))
        {
            s += 1;
            continue;
        }
        let Some(close) = matching(tokens, sig, s + 1, '[', ']') else {
            break;
        };
        let attr: Vec<&Token> = sig[s + 2..close].iter().map(|&i| &tokens[i]).collect();
        let is_test_attr = match attr.first() {
            Some(t) if t.is_ident("test") => true,
            Some(t) if t.is_ident("cfg") => {
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"))
            }
            _ => false,
        };
        if !is_test_attr {
            s = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = close + 1;
        while tokens.get(*sig.get(k).unwrap_or(&usize::MAX)).is_some()
            && tokens[sig[k]].is_punct('#')
            && sig.get(k + 1).is_some_and(|&j| tokens[j].is_punct('['))
        {
            match matching(tokens, sig, k + 1, '[', ']') {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // The gated item runs to its closing brace, or to `;` for
        // brace-less items (`use`, `type`, …).
        let mut end = None;
        let mut m = k;
        while m < sig.len() {
            let t = &tokens[sig[m]];
            if t.is_punct('{') {
                end = matching(tokens, sig, m, '{', '}');
                break;
            }
            if t.is_punct(';') {
                end = Some(m);
                break;
            }
            m += 1;
        }
        let last = end.unwrap_or(sig.len() - 1);
        for &i in &sig[s..=last.min(sig.len() - 1)] {
            mask[i] = true;
        }
        s = last + 1;
    }
    mask
}

/// Index (into `sig`) of the token matching the opener at `sig[open]`.
fn matching(tokens: &[Token], sig: &[usize], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0isize;
    for (k, &i) in sig.iter().enumerate().skip(open) {
        if tokens[i].is_punct(o) {
            depth += 1;
        } else if tokens[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// True when `cfg` scopes this rule onto `file`.
fn in_scope(cfg: &RuleCfg, file: &SourceFile) -> bool {
    cfg.crates.iter().any(|c| c == &file.crate_key)
        && (cfg.files.is_empty() || cfg.files.iter().any(|f| file.path.ends_with(f.as_str())))
}

/// Runs every configured rule over `file`, returning unfiltered
/// (pre-allowlist) diagnostics in source order.
pub fn run_rules(file: &SourceFile, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in &config.rules {
        if !in_scope(rule, file) {
            continue;
        }
        match rule.id.as_str() {
            "D1" => d1_unordered_maps(file, rule, &mut out),
            "D2" => d2_wall_clock(file, rule, &mut out),
            "D3" => d3_ambient_rng(file, rule, &mut out),
            "D4" => d4_float_quantities(file, rule, &mut out),
            "D5" => d5_panics(file, rule, &mut out),
            "D6" => d6_unsafe(file, rule, &mut out),
            "D7" => d7_doc_contracts(file, rule, &mut out),
            "D8" => d8_env_reads(file, rule, &mut out),
            "D9" => d9_socket_timeouts(file, rule, &mut out),
            "D10" => d10_shard_side_channels(file, rule, &mut out),
            _ => {}
        }
    }
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

fn d1_unordered_maps(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(file.diag(
                "D1",
                t,
                format!(
                    "unordered container `{}` in deterministic crate `{}`",
                    t.text, file.crate_key
                ),
                cfg,
            ));
        }
    }
}

fn d2_wall_clock(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(file.diag(
                "D2",
                t,
                format!(
                    "wall-clock type `{}` in deterministic crate `{}`",
                    t.text, file.crate_key
                ),
                cfg,
            ));
        } else if t.is_ident("std")
            && file.at(s + 1).is_some_and(|t| t.is_punct(':'))
            && file.at(s + 2).is_some_and(|t| t.is_punct(':'))
            && file.at(s + 3).is_some_and(|t| t.is_ident("time"))
        {
            out.push(file.diag(
                "D2",
                t,
                format!(
                    "`std::time` import in deterministic crate `{}`",
                    file.crate_key
                ),
                cfg,
            ));
        }
    }
}

fn d3_ambient_rng(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        if t.is_ident("thread_rng") {
            out.push(file.diag(
                "D3",
                t,
                format!("ambient RNG `thread_rng` in crate `{}`", file.crate_key),
                cfg,
            ));
        } else if t.is_ident("rand")
            && file.at(s + 1).is_some_and(|t| t.is_punct(':'))
            && file.at(s + 2).is_some_and(|t| t.is_punct(':'))
        {
            out.push(file.diag(
                "D3",
                t,
                format!("`rand::` path in crate `{}`", file.crate_key),
                cfg,
            ));
        }
    }
}

/// Arithmetic operator puncts for the D4 `.0` check.
fn is_arith(t: &Token) -> bool {
    t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%")
}

fn d4_float_quantities(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    // Newtype internals live in units.rs by construction; the rule text
    // is "outside units.rs".
    if file.file_name == "units.rs" {
        return;
    }
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        if t.kind == TokKind::Float {
            out.push(file.diag(
                "D4",
                t,
                format!(
                    "float literal `{}` in quantity crate `{}`",
                    t.text, file.crate_key
                ),
                cfg,
            ));
        } else if t.is_ident("f64") || t.is_ident("f32") {
            out.push(file.diag(
                "D4",
                t,
                format!(
                    "float type `{}` in quantity crate `{}`",
                    t.text, file.crate_key
                ),
                cfg,
            ));
        } else if t.is_punct('.')
            && file
                .at(s + 1)
                .is_some_and(|n| n.kind == TokKind::Int && n.text == "0")
        {
            // Raw newtype-field arithmetic: `x.0 * y` or `a + x.0`.
            let op_after = file.at(s + 2).is_some_and(is_arith);
            let op_before = s >= 2 && file.at(s - 2).is_some_and(is_arith);
            if op_after || op_before {
                out.push(file.diag(
                    "D4",
                    t,
                    format!(
                        "raw `.0` newtype-field arithmetic in crate `{}`",
                        file.crate_key
                    ),
                    cfg,
                ));
            }
        }
    }
}

fn d5_panics(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        let method_call = |name: &str| {
            t.is_ident(name)
                && s >= 1
                && file.at(s - 1).is_some_and(|p| p.is_punct('.'))
                && file.at(s + 1).is_some_and(|n| n.is_punct('('))
        };
        if method_call("unwrap") || method_call("expect") {
            out.push(file.diag(
                "D5",
                t,
                format!("hot-loop crate `{}` calls `.{}()`", file.crate_key, t.text),
                cfg,
            ));
            continue;
        }
        let bang_macro = (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && file.at(s + 1).is_some_and(|n| n.is_punct('!'));
        if bang_macro {
            out.push(file.diag(
                "D5",
                t,
                format!("hot-loop crate `{}` invokes `{}!`", file.crate_key, t.text),
                cfg,
            ));
        }
    }
}

fn d6_unsafe(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    // `unsafe` is banned even in test code.
    for s in 0..file.sig.len() {
        let t = &file.tokens[file.sig[s]];
        if t.is_ident("unsafe") {
            out.push(file.diag(
                "D6",
                t,
                format!("`unsafe` keyword in crate `{}`", file.crate_key),
                cfg,
            ));
        }
    }
    if file.is_crate_root && !has_forbid_unsafe(file) {
        let anchor = Token {
            kind: TokKind::Punct,
            text: String::new(),
            line: 1,
            col: 1,
        };
        out.push(file.diag(
            "D6",
            &anchor,
            format!(
                "crate root `{}` is missing `#![forbid(unsafe_code)]`",
                file.path
            ),
            cfg,
        ));
    }
}

fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let pat = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    (0..file.sig.len()).any(|s| {
        pat.iter()
            .enumerate()
            .all(|(k, want)| file.at(s + k).is_some_and(|t| t.text == *want))
    })
}

fn d7_doc_contracts(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut pending_doc = false;
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::DocComment => {
                // Inner docs (`//!`, `/*!`) document the *enclosing*
                // module, not the next item — they never satisfy D7.
                if !(toks[i].text.starts_with("//!") || toks[i].text.starts_with("/*!")) {
                    pending_doc = true;
                }
                i += 1;
                continue;
            }
            TokKind::Comment => {
                i += 1;
                continue;
            }
            _ => {}
        }
        // Attributes between the doc comment and the item keep the doc.
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0isize;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if toks[i].is_ident("pub") && !file.in_test[i] {
            // Skip a visibility scope: pub(crate), pub(super), …
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                let mut depth = 0isize;
                while j < toks.len() {
                    if toks[j].is_punct('(') {
                        depth += 1;
                    } else if toks[j].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            while toks
                .get(j)
                .is_some_and(|t| t.is_ident("const") || t.is_ident("async") || t.is_ident("extern"))
                || toks.get(j).is_some_and(|t| t.kind == TokKind::Str)
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_ident("fn")) {
                if !pending_doc {
                    let name = toks.get(j + 1).map(|t| t.text.clone()).unwrap_or_default();
                    out.push(file.diag(
                        "D7",
                        &toks[i],
                        format!(
                            "pub fn `{name}` in crate `{}` has no doc comment stating its \
                             ordering contract",
                            file.crate_key
                        ),
                        cfg,
                    ));
                }
                pending_doc = false;
                i = j + 1;
                continue;
            }
        }
        pending_doc = false;
        i += 1;
    }
}

fn d8_env_reads(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        if t.is_ident("env")
            && file.at(s + 1).is_some_and(|t| t.is_punct(':'))
            && file.at(s + 2).is_some_and(|t| t.is_punct(':'))
            && file
                .at(s + 3)
                .is_some_and(|t| t.is_ident("var") || t.is_ident("var_os") || t.is_ident("vars"))
        {
            let what = file.at(s + 3).map(|t| t.text.clone()).unwrap_or_default();
            out.push(file.diag(
                "D8",
                t,
                format!(
                    "environment read `env::{what}` in result-producing crate `{}`",
                    file.crate_key
                ),
                cfg,
            ));
        }
    }
}

/// D9: a serving-layer thread doing blocking socket I/O must never wait
/// forever on a peer. Two syntactic checks:
///
/// 1. `set_read_timeout(None)` / `set_write_timeout(None)` explicitly
///    configures an *infinite* wait — flagged at the call site.
/// 2. A file that names `TcpStream` but never calls
///    `set_read_timeout(Some(..))` (nor passes a computed timeout) is
///    doing bare reads on an unconfigured stream — flagged at the first
///    `TcpStream` mention. Any non-`None` argument counts as configuring,
///    so helpers that thread a `Duration` through are accepted.
fn d9_socket_timeouts(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    let mut first_stream: Option<Token> = None;
    let mut configures_read_timeout = false;
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        let is_setter = t.is_ident("set_read_timeout") || t.is_ident("set_write_timeout");
        if is_setter && file.at(s + 1).is_some_and(|n| n.is_punct('(')) {
            if file.at(s + 2).is_some_and(|n| n.is_ident("None")) {
                out.push(file.diag(
                    "D9",
                    t,
                    format!(
                        "`{}(None)` configures an infinite socket wait in crate `{}`",
                        t.text, file.crate_key
                    ),
                    cfg,
                ));
            } else if t.is_ident("set_read_timeout") {
                configures_read_timeout = true;
            }
        }
        if t.is_ident("TcpStream") && first_stream.is_none() {
            first_stream = Some(t.clone());
        }
    }
    if let Some(t) = first_stream {
        if !configures_read_timeout {
            out.push(file.diag(
                "D9",
                &t,
                format!(
                    "`TcpStream` used in crate `{}` without ever setting a finite read \
                     timeout (`set_read_timeout(Some(..))`)",
                    file.crate_key
                ),
                cfg,
            ));
        }
    }
}

/// D10: code that runs inside shard worker domains (the fabric crate)
/// must exchange cross-shard state only through the
/// `rperf_sim::shard::Mailbox` envelopes that the window scheduler
/// merges in `(time, seq)` order at window boundaries. Any ad-hoc
/// shared-mutable synchronization — `Mutex`/`RwLock` guards, `mpsc`
/// channels, `RefCell`/`Cell` interior mutability — is a side channel
/// the deterministic merge never sees, so whatever flows through it
/// depends on thread scheduling. Atomics are deliberately not flagged:
/// the fabric's global counters (`events_processed_total`, slab
/// high-water) are monotonic telemetry folded after the run, not
/// simulation state.
fn d10_shard_side_channels(file: &SourceFile, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    const SIDE_CHANNELS: [&str; 5] = ["Mutex", "RwLock", "RefCell", "Cell", "mpsc"];
    for s in 0..file.sig.len() {
        if file.test_at(s) {
            continue;
        }
        let t = &file.tokens[file.sig[s]];
        if let Some(name) = SIDE_CHANNELS.iter().copied().find(|&n| t.is_ident(n)) {
            out.push(file.diag(
                "D10",
                t,
                format!(
                    "shared-mutable sync primitive `{name}` in shard-executed crate `{}`; \
                     cross-shard state must travel through the mailbox",
                    file.crate_key
                ),
                cfg,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(ids: &[&str]) -> Config {
        Config {
            rules: ids
                .iter()
                .map(|id| RuleCfg {
                    id: (*id).to_string(),
                    crates: vec!["fixture".to_string()],
                    files: Vec::new(),
                    hint: None,
                    entries: Vec::new(),
                    api_crate: None,
                })
                .collect(),
            allows: Vec::new(),
            off_features: Vec::new(),
        }
    }

    fn run(src: &str, ids: &[&str]) -> Vec<Diagnostic> {
        let file = SourceFile::analyze("fixture/src/x.rs", "fixture", false, src);
        run_rules(&file, &cfg_for(ids))
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = r#"
fn hot(v: Option<u32>) -> u32 { v.map_or(0, |x| x) }

#[cfg(test)]
mod tests {
    #[test]
    fn checks() { Some(3).unwrap(); }
}
"#;
        assert!(run(src, &["D5"]).is_empty());
        // But cfg(not(test)) is NOT a test region.
        let src = "#[cfg(not(test))]\nfn hot(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert_eq!(run(src, &["D5"]).len(), 1);
    }

    #[test]
    fn d5_matches_only_real_calls() {
        let diags = run(
            "fn f(v: Option<u32>) { v.expect(\"boom\"); let unwrap = 3; g(unwrap); panic!(\"x\"); }",
            &["D5"],
        );
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags[0].msg.contains(".expect()"));
        assert!(diags[1].msg.contains("panic!"));
        // Strings and comments never fire.
        assert!(run("// .unwrap() \nfn f() { g(\".unwrap()\"); }", &["D5"]).is_empty());
        // unwrap_or_else is fine.
        assert!(run("fn f(v: Option<u32>) { v.unwrap_or_else(|| 3); }", &["D5"]).is_empty());
    }

    #[test]
    fn d4_flags_floats_and_newtype_arith() {
        let diags = run("fn f(a: Wrap, b: u64) -> u64 { a.0 * b }", &["D4"]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains(".0"));
        assert_eq!(run("const X: f64 = 1.5;", &["D4"]).len(), 2);
        // Plain field reads (no arithmetic) are fine, and so is x.0.1.
        assert!(run("fn f(a: Wrap) -> u64 { a.0 }", &["D4"]).is_empty());
        // units.rs itself is exempt by construction.
        let file = SourceFile::analyze(
            "crates/model/src/units.rs",
            "fixture",
            false,
            "fn f(a: W) -> u64 { a.0 * 2 }",
        );
        assert!(run_rules(&file, &cfg_for(&["D4"])).is_empty());
    }

    #[test]
    fn d6_checks_crate_roots() {
        let file = SourceFile::analyze(
            "fixture/src/lib.rs",
            "fixture",
            true,
            "#![forbid(unsafe_code)]\npub fn ok() {}\n",
        );
        assert!(run_rules(&file, &cfg_for(&["D6"])).is_empty());
        let file = SourceFile::analyze("fixture/src/lib.rs", "fixture", true, "pub fn ok() {}\n");
        let diags = run_rules(&file, &cfg_for(&["D6"]));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].msg.contains("forbid"), "{diags:#?}");
    }

    #[test]
    fn d7_needs_docs_on_pub_fns() {
        let src = r#"
/// Documented: pops in (time, seq) order.
#[inline]
pub fn pop() {}

pub fn undocumented() {}

fn private_needs_no_doc() {}
"#;
        let diags = run(src, &["D7"]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains("undocumented"));
    }

    #[test]
    fn d9_socket_timeout_patterns() {
        // An explicit infinite wait fires at the call site — and since a
        // `None` timeout is not a finite one, the file-level check fires
        // too when no `Some(..)` read timeout exists anywhere.
        let diags = run(
            "fn f(s: &TcpStream) { s.set_read_timeout(None).ok(); \
             s.set_write_timeout(Some(t)).ok(); }",
            &["D9"],
        );
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags[1].msg.contains("set_read_timeout(None)"));
        assert!(diags[0].msg.contains("finite read timeout"));
        // With a finite read timeout elsewhere, only the None fires.
        let diags = run(
            "fn f(s: &TcpStream) { s.set_read_timeout(Some(t)).ok(); }\n\
             fn g(s: &TcpStream) { s.set_write_timeout(None).ok(); }",
            &["D9"],
        );
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains("set_write_timeout(None)"));
        // A TcpStream with no finite read timeout anywhere fires once.
        let diags = run(
            "fn f(mut s: TcpStream) { s.read_exact(&mut buf).ok(); }",
            &["D9"],
        );
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains("finite read timeout"), "{diags:#?}");
        // Configuring Some(..) — or a computed timeout variable — is clean.
        assert!(run(
            "fn f(s: &TcpStream) { s.set_read_timeout(Some(t)).ok(); }",
            &["D9"],
        )
        .is_empty());
        assert!(run(
            "fn f(s: &TcpStream, t: Option<Duration>) { s.set_read_timeout(t).ok(); }",
            &["D9"],
        )
        .is_empty());
        // Test code is exempt, as everywhere.
        assert!(run(
            "#[cfg(test)]\nmod tests { fn f(s: &TcpStream) { s.read(&mut b).ok(); } }",
            &["D9"],
        )
        .is_empty());
    }

    #[test]
    fn d10_flags_side_channels_not_mailbox_or_atomics() {
        let diags = run(
            "use std::sync::Mutex;\nfn f() { let (tx, rx) = mpsc::channel(); }",
            &["D10"],
        );
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags[0].msg.contains("`Mutex`"));
        assert!(diags[1].msg.contains("`mpsc`"));
        // RefCell and Cell are interior-mutability side channels too.
        assert_eq!(
            run("fn f(c: &RefCell<u64>, d: &Cell<u8>) {}", &["D10"]).len(),
            2
        );
        // The mailbox API and telemetry atomics are the sanctioned paths.
        assert!(run(
            "use rperf_sim::shard::Mailbox;\n\
             static EVENTS: AtomicU64 = AtomicU64::new(0);\n\
             fn f(m: &Mailbox<Envelope>) { m.post(0, e); }",
            &["D10"],
        )
        .is_empty());
        // Strings, comments, and test regions never fire.
        assert!(run("// Mutex\nfn f() { g(\"Mutex\"); }", &["D10"]).is_empty());
        assert!(run(
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; }",
            &["D10"],
        )
        .is_empty());
    }

    #[test]
    fn d2_d3_d8_path_patterns() {
        assert_eq!(run("use std::time::Instant;", &["D2"]).len(), 2);
        assert_eq!(run("fn f() { let x = rand::random(); }", &["D3"]).len(), 1);
        assert_eq!(
            run("fn f() { std::env::var(\"HOME\").ok(); }", &["D8"]).len(),
            1
        );
        // env!() compile-time macro and CLI args are fine.
        assert!(run("fn f() { env!(\"CARGO\"); std::env::args(); }", &["D8"]).is_empty());
    }
}
