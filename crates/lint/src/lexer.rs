//! A small hand-written Rust lexer.
//!
//! The offline build cannot resolve registry crates, so there is no
//! `syn`/`proc-macro2` to lean on; instead this module tokenizes Rust
//! source just accurately enough for invariant linting: every token
//! carries a 1-based line/column span, string/char/comment bodies are
//! recognized (so rule patterns never fire inside them), raw strings,
//! byte strings, nested block comments, lifetimes-vs-char-literals and
//! tuple-index-vs-float (`x.0.1`) are disambiguated. Everything that is
//! not a literal, identifier or comment is emitted as a single-character
//! [`TokKind::Punct`] token — the rule engine matches on short token
//! sequences, so multi-character operators are unnecessary.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw `r#idents`).
    Ident,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// An integer literal, including its suffix (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal, including its suffix (`1.5`, `1e9`, `2f64`).
    Float,
    /// A string literal of any flavour (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A non-doc comment (`// x`, `/* x */`).
    Comment,
    /// A doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// Any other single character (`.`, `(`, `#`, `!`, …).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based (character) column of the first character.
    pub col: u32,
}

impl Token {
    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when this is the single-character punct `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes `n` characters into `out`.
    fn take(&mut self, n: usize, out: &mut String) {
        for _ in 0..n {
            if let Some(c) = self.bump() {
                out.push(c);
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Never fails: unterminated literals simply run to end
/// of input — the compiler, not the linter, reports malformed Rust.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks: Vec<Token> = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            let doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            let kind = if doc {
                TokKind::DocComment
            } else {
                TokKind::Comment
            };
            toks.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.take(2, &mut text);
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.take(2, &mut text);
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(_), _) => cur.take(1, &mut text),
                    (None, _) => break,
                }
            }
            let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
                || text.starts_with("/*!");
            let kind = if doc {
                TokKind::DocComment
            } else {
                TokKind::Comment
            };
            toks.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let mut text = String::new();
            cur.take(1, &mut text);
            lex_string_body(&mut cur, &mut text);
            toks.push(Token {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            let tok = lex_quote(&mut cur, line, col);
            toks.push(tok);
            continue;
        }

        // Numbers. `x.0.1` must lex the field indexes as plain ints, so a
        // number immediately after a `.` token never consumes a dot.
        if c.is_ascii_digit() {
            let after_dot = matches!(toks.last(), Some(t) if t.is_punct('.'));
            let tok = lex_number(&mut cur, line, col, after_dot);
            toks.push(tok);
            continue;
        }

        // Identifiers, raw identifiers, and prefixed literals (r"", b"",
        // br#""#, b'x').
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
            let str_capable = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr");
            match cur.peek(0) {
                // Raw identifier `r#name` (but `r#"` starts a raw string).
                Some('#') if text == "r" && cur.peek(1).is_some_and(is_ident_start) => {
                    cur.take(1, &mut text);
                    while let Some(ch) = cur.peek(0) {
                        if !is_ident_continue(ch) {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    toks.push(Token {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                    });
                }
                // Raw string `r#"..."#` / `br##"..."##`.
                Some('#') if raw_capable => {
                    let mut hashes = 0usize;
                    while cur.peek(0) == Some('#') {
                        cur.take(1, &mut text);
                        hashes += 1;
                    }
                    if cur.peek(0) == Some('"') {
                        cur.take(1, &mut text);
                        lex_raw_string_body(&mut cur, &mut text, hashes);
                        toks.push(Token {
                            kind: TokKind::Str,
                            text,
                            line,
                            col,
                        });
                    } else {
                        // `r#` followed by something else: emit what we have.
                        toks.push(Token {
                            kind: TokKind::Ident,
                            text,
                            line,
                            col,
                        });
                    }
                }
                // Raw-ish string with zero hashes: `r"..."`, `b"..."`.
                Some('"') if str_capable => {
                    cur.take(1, &mut text);
                    if text.contains('r') {
                        lex_raw_string_body(&mut cur, &mut text, 0);
                    } else {
                        lex_string_body(&mut cur, &mut text);
                    }
                    toks.push(Token {
                        kind: TokKind::Str,
                        text,
                        line,
                        col,
                    });
                }
                // Byte char `b'x'`.
                Some('\'') if text == "b" => {
                    cur.take(1, &mut text);
                    lex_char_body(&mut cur, &mut text);
                    toks.push(Token {
                        kind: TokKind::Char,
                        text,
                        line,
                        col,
                    });
                }
                _ => toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                }),
            }
            continue;
        }

        // Everything else: one punct character.
        let mut text = String::new();
        cur.take(1, &mut text);
        toks.push(Token {
            kind: TokKind::Punct,
            text,
            line,
            col,
        });
    }

    toks
}

/// Consumes a plain string body after the opening quote, including the
/// closing quote, honouring backslash escapes.
fn lex_string_body(cur: &mut Cursor, text: &mut String) {
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            cur.take(2, text);
            continue;
        }
        cur.take(1, text);
        if ch == '"' {
            break;
        }
    }
}

/// Consumes a raw string body after the opening quote, including the
/// closing `"###…` with `hashes` hash characters.
fn lex_raw_string_body(cur: &mut Cursor, text: &mut String, hashes: usize) {
    while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            let closing = (1..=hashes).all(|k| cur.peek(k) == Some('#'));
            cur.take(1 + if closing { hashes } else { 0 }, text);
            if closing {
                return;
            }
            continue;
        }
        cur.take(1, text);
    }
}

/// Consumes a char-literal body after the opening quote, including the
/// closing quote.
fn lex_char_body(cur: &mut Cursor, text: &mut String) {
    if cur.peek(0) == Some('\\') {
        cur.take(2, text);
        // Escapes like \x41 or \u{1F600}: run to the closing quote.
        while let Some(ch) = cur.peek(0) {
            cur.take(1, text);
            if ch == '\'' {
                return;
            }
        }
        return;
    }
    cur.take(1, text);
    if cur.peek(0) == Some('\'') {
        cur.take(1, text);
    }
}

/// Lexes at a `'`: either a char literal (`'x'`, `'\n'`, `'('`) or a
/// lifetime (`'a`, `'static`, `'_`).
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    cur.take(1, &mut text); // the quote
    match cur.peek(0) {
        Some('\\') => {
            lex_char_body(cur, &mut text);
            Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(ch) if is_ident_start(ch) || ch.is_ascii_digit() => {
            // Could be `'a'` (char) or `'a` (lifetime): scan the ident run
            // and decide by whether a closing quote follows.
            let mut body = String::new();
            let mut k = 0usize;
            while let Some(c2) = cur.peek(k) {
                if !is_ident_continue(c2) {
                    break;
                }
                body.push(c2);
                k += 1;
            }
            if cur.peek(k) == Some('\'') && body.chars().count() == 1 {
                cur.take(k + 1, &mut text);
                Token {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                }
            } else {
                cur.take(k, &mut text);
                Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                }
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or ' '.
            lex_char_body(cur, &mut text);
            Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        None => Token {
            kind: TokKind::Punct,
            text,
            line,
            col,
        },
    }
}

/// Lexes a numeric literal. When `after_dot`, the number is a tuple
/// index: consume digits only, never a fractional part.
fn lex_number(cur: &mut Cursor, line: u32, col: u32, after_dot: bool) -> Token {
    let mut text = String::new();
    // Digits, `_`, radix prefixes and suffix letters all fall in the
    // alphanumeric/underscore set.
    while let Some(ch) = cur.peek(0) {
        if !is_ident_continue(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    let hex = text.starts_with("0x") || text.starts_with("0X");
    if !after_dot && !hex && cur.peek(0) == Some('.') {
        match cur.peek(1) {
            // `1.5`: fractional part.
            Some(d) if d.is_ascii_digit() => {
                cur.take(1, &mut text);
                while let Some(ch) = cur.peek(0) {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
            }
            // `1.` trailing-dot float, but not `1..` (range) and not
            // `1.max(..)` (method call).
            Some(d) if d != '.' && !is_ident_start(d) => cur.take(1, &mut text),
            None => cur.take(1, &mut text),
            _ => {}
        }
    }
    let float = text.contains('.')
        || (!hex && (text.contains('e') || text.contains('E')) && !text.ends_with("e"))
        || (!hex && (text.ends_with("f32") || text.ends_with("f64")));
    let kind = if float && !after_dot {
        TokKind::Float
    } else {
        TokKind::Int
    };
    Token {
        kind,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x = 42 + 0xFF_u64;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Int, "42".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Int, "0xFF_u64".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn floats_vs_tuple_indexes() {
        assert_eq!(
            kinds("a.0 + 1.5"),
            vec![
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Int, "0".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Float, "1.5".into()),
            ]
        );
        // x.0.1 is two field accesses, not a float.
        assert_eq!(
            kinds("x.0.1"),
            vec![
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Int, "0".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Int, "1".into()),
            ]
        );
        assert_eq!(kinds("1e9")[0].0, TokKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1..2")[1], (TokKind::Punct, ".".into()));
        assert_eq!(kinds("3.max(4)")[0], (TokKind::Int, "3".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"f("no unwrap() here \" quote", 'x', b"bytes")"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || !t.contains("unwrap")));
        assert_eq!(
            toks[2],
            (TokKind::Str, r#""no unwrap() here \" quote""#.into())
        );
        assert_eq!(toks[4].0, TokKind::Char);
        assert_eq!(toks[6].0, TokKind::Str);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let r#fn = 1;"###);
        assert_eq!(toks[3], (TokKind::Str, r###"r#"quote " inside"#"###.into()));
        assert_eq!(toks[6], (TokKind::Ident, "r#fn".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("<'a, 'static> 'x' '\\n' '_'"),
            vec![
                (TokKind::Punct, "<".into()),
                (TokKind::Lifetime, "'a".into()),
                (TokKind::Punct, ",".into()),
                (TokKind::Lifetime, "'static".into()),
                (TokKind::Punct, ">".into()),
                (TokKind::Char, "'x'".into()),
                (TokKind::Char, "'\\n'".into()),
                (TokKind::Char, "'_'".into()),
            ]
        );
    }

    #[test]
    fn comments_and_doc_comments() {
        let toks = kinds("/// doc\n// plain\n/** block doc */\n/* /* nested */ */ fn");
        assert_eq!(toks[0].0, TokKind::DocComment);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert_eq!(toks[2].0, TokKind::DocComment);
        assert_eq!(toks[3], (TokKind::Comment, "/* /* nested */ */".into()));
        assert_eq!(toks[4].0, TokKind::Ident);
    }

    #[test]
    fn spans_are_one_based_lines_and_columns() {
        let toks = lex("ab\n  cd // x\n\"s\"");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 6));
        assert_eq!((toks[3].line, toks[3].col), (3, 1));
    }
}
