//! The `rperf-lint` binary: lints the workspace against `lint.toml`.
//!
//! ```text
//! rperf-lint [--root DIR] [--config FILE]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/I-O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rperf_lint::{lint_workspace, Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--help" | "-h" => {
                println!("usage: rperf-lint [--root DIR] [--config FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));

    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rperf-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rperf-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rperf-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        print!("{}", d.render());
    }
    for w in &report.unused_allows {
        eprintln!("rperf-lint: warning: {w}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "lint-invariants: clean ({} files, {} rules, {} allow entries)",
            report.files_checked,
            cfg.rules.len(),
            cfg.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        // Diagnostics are sorted by path, so dedup yields distinct files.
        let mut files: Vec<&str> = report.diagnostics.iter().map(|d| d.path.as_str()).collect();
        files.dedup();
        println!(
            "lint-invariants: {} violation(s) in {} of {} files",
            report.diagnostics.len(),
            files.len(),
            report.files_checked
        );
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rperf-lint: {msg}\nusage: rperf-lint [--root DIR] [--config FILE]");
    ExitCode::from(2)
}
