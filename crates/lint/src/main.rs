//! The `rperf-lint` binary: lints the workspace against `lint.toml`.
//!
//! ```text
//! rperf-lint [--root DIR] [--config FILE] [--jobs N]
//!            [--format human|json] [--explain RULE] [--ci]
//! ```
//!
//! * `--jobs N` — worker threads for the per-file scan (0 = all cores;
//!   output is byte-identical for any N).
//! * `--format json` — machine-readable diagnostics on stdout.
//! * `--explain RULE` — print what a rule proves and how to fix or
//!   exempt a finding, then exit.
//! * `--ci` — additionally write `LINT_report.json` under `--root` (the
//!   CI artifact the problem matcher and the report step consume).
//!
//! Exit codes: 0 clean, 1 violations found *or stale `[[allow]]`
//! entries* (the allowlist must not rot), 2 usage/config/I-O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rperf_lint::{lint_workspace, report_json, rules, Config};

const USAGE: &str = "usage: rperf-lint [--root DIR] [--config FILE] [--jobs N] \
                     [--format human|json] [--explain RULE] [--ci]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut jobs = 0usize;
    let mut json = false;
    let mut ci = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a file"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage("--jobs needs a number"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => json = false,
                Some("json") => json = true,
                _ => return usage("--format needs `human` or `json`"),
            },
            "--explain" => {
                return match args.next().as_deref().and_then(rules::explain) {
                    Some(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => usage(&format!(
                        "--explain needs a rule id (known: {:?})",
                        rules::KNOWN_IDS
                    )),
                };
            }
            "--ci" => ci = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));

    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rperf-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rperf-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &cfg, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rperf-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if ci {
        let artifact = root.join("LINT_report.json");
        if let Err(e) = std::fs::write(&artifact, report_json(&report) + "\n") {
            eprintln!("rperf-lint: cannot write {}: {e}", artifact.display());
            return ExitCode::from(2);
        }
    }
    if json {
        println!("{}", report_json(&report));
        return if report.diagnostics.is_empty() && report.unused_allows.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    for d in &report.diagnostics {
        print!("{}", d.render());
    }
    for w in &report.unused_allows {
        eprintln!("rperf-lint: error: {w}");
    }
    if report.diagnostics.is_empty() && report.unused_allows.is_empty() {
        println!(
            "lint-invariants: clean ({} files, {} rules, {} allow entries)",
            report.files_checked,
            cfg.rules.len(),
            cfg.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        // Diagnostics are sorted by path, so dedup yields distinct files.
        let mut files: Vec<&str> = report.diagnostics.iter().map(|d| d.path.as_str()).collect();
        files.dedup();
        println!(
            "lint-invariants: {} violation(s) in {} of {} files, {} stale allow(s)",
            report.diagnostics.len(),
            files.len(),
            report.files_checked,
            report.unused_allows.len()
        );
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rperf-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
