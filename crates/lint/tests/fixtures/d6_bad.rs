//! D6 bad: an `unsafe` block, and the crate root is missing
//! `#![forbid(unsafe_code)]`.

/// Reads the first element without a bounds check.
pub fn peek(v: &[u32]) -> u32 {
    unsafe { *v.get_unchecked(0) }
}
