//! D7 bad: a public event-API function with no ordering contract.

pub fn pop_event() -> Option<u32> {
    None
}
