//! D8 good: configuration is threaded through explicit arguments.

/// Worker count from the parsed CLI configuration, recorded with the
/// run's provenance.
pub fn jobs(cli_jobs: Option<usize>) -> usize {
    cli_jobs.unwrap_or(1)
}
