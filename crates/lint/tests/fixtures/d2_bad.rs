//! D2 bad: wall-clock reads leak host timing into results.

use std::time::Instant;

/// Measures elapsed host time — different on every run.
pub fn measure() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
