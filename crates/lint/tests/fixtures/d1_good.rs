//! D1 good: ordered containers keep iteration deterministic.

use std::collections::BTreeMap;

/// Tallies flows; `BTreeMap` iterates in key order on every platform.
pub fn tally(flows: &[u32]) -> BTreeMap<u32, u64> {
    let mut seen: BTreeMap<u32, u64> = BTreeMap::new();
    for f in flows {
        *seen.entry(*f).or_default() += 1;
    }
    seen
}
