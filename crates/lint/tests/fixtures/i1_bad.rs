//! I1 bad: the figure path reaches ambient RNG two calls down — the
//! exact laundering the token rule D3 cannot see when the helper lives
//! in another file or crate.

/// Figure entry: sweeps message sizes and reports latency.
pub fn fig_latency(points: &mut Vec<u64>) {
    for size in [2u64, 1024, 4096] {
        points.push(sample_one(size));
    }
}

/// Runs one point of the sweep.
fn sample_one(size: u64) -> u64 {
    size + jitter()
}

/// "Realistic" jitter — from the thread-local RNG, ignoring the seed.
fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64() % 100
}

/// Not reachable from the figure path: stays unflagged even though it
/// reads the wall clock (precision over D2's per-crate blanket).
pub fn debug_timer() -> Instant {
    Instant::now()
}
