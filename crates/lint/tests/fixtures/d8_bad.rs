//! D8 bad: results depend on the caller's shell environment.

/// Worker count from an environment variable — invisible to the
/// experiment record.
pub fn jobs() -> usize {
    match std::env::var("RPERF_JOBS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
