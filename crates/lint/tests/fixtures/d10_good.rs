//! D10 good: cross-shard traffic goes through the sim mailbox, which
//! the window scheduler drains and merges in `(time, seq)` order; the
//! only shared state is monotonic telemetry atomics.

use std::sync::atomic::{AtomicU64, Ordering};

use rperf_sim::shard::Mailbox;

/// Events handled across all shards — telemetry folded after the run,
/// never read back into simulation state.
pub static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Posts one envelope to the destination shard's mailbox. Delivery
/// order is fixed by the envelope key, not by thread scheduling.
pub fn forward(grid: &Mailbox<u64>, dest: usize, envelope: u64) {
    grid.post(dest, envelope);
    EVENTS.fetch_add(1, Ordering::Relaxed);
}
