//! D5 good: guard invariants with `let .. else` + `debug_assert!`.

/// Pops the queue head; an empty queue is a scheduler bug, reported in
/// debug builds and skipped in release.
pub fn drain_head(q: &mut Vec<u32>) -> u32 {
    let Some(head) = q.pop() else {
        debug_assert!(false, "drain_head called on an empty queue");
        return 0;
    };
    head
}
