//! D4 good: quantities stay in integer newtypes with named operations.

use rperf_sim::{SimDuration, SimTime};

/// Averages two instants without leaving integer picoseconds.
pub fn midpoint(a: SimTime, b: SimTime) -> SimTime {
    let half: SimDuration = (b - a) / 2;
    a + half
}
