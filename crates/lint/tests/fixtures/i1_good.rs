//! I1 good: the same shape of figure path, with randomness threaded
//! through an explicit seeded stream — nothing ambient is reachable.

/// Figure entry: sweeps message sizes and reports latency.
pub fn fig_latency(points: &mut Vec<u64>, rng: &mut SimRng) {
    for size in [2u64, 1024, 4096] {
        points.push(sample_one(size, rng));
    }
}

/// Runs one point of the sweep.
fn sample_one(size: u64, rng: &mut SimRng) -> u64 {
    size + jitter(rng)
}

/// Jitter from the experiment-seeded stream: replayable.
fn jitter(rng: &mut SimRng) -> u64 {
    rng.next_u64() % 100
}

/// Ambient input outside the figure path's reachable set is the token
/// rules' business (D2/D3), not I1's.
pub fn debug_timer() -> Instant {
    Instant::now()
}
