//! I2 good: the same three-hop chain with the invariant demoted to a
//! `debug_assert!` and a typed fallback — release reachability is clean.

/// The simulated world: one event queue, one slab.
pub struct WorldState {
    queue: Vec<u64>,
}

impl WorldState {
    /// Hot-loop entry: dispatches one event.
    pub fn handle_one(&mut self) {
        step(&mut self.queue);
    }
}

/// First hop: advances the queue.
fn step(queue: &mut Vec<u64>) {
    deliver(queue);
}

/// Second hop: delivers the head event.
fn deliver(queue: &mut Vec<u64>) {
    route(queue.len() as u64);
}

/// Third hop: the invariant is checked in debug builds only; release
/// degrades to a drop counter instead of aborting the sweep.
fn route(lid: u64) -> bool {
    if lid > 48 {
        debug_assert!(false, "no route for LID {lid}");
        return false;
    }
    true
}

/// Outside the hot loop, panicking on impossible states is fine (and is
/// D5's business where enabled, not I2's).
pub fn offline_report(v: Option<u64>) -> u64 {
    v.unwrap()
}
