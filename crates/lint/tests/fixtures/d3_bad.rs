//! D3 bad: ambient RNG ignores the experiment seed.

/// Draws jitter from the thread-local generator — unseeded, unstable.
pub fn jitter() -> u64 {
    let a: u64 = rand::random();
    let b: u64 = thread_rng().gen();
    a ^ b
}
