//! D9 good: every blocking socket gets a finite timeout right after it
//! is obtained, so a stalled peer costs at most one timeout interval.

use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

/// Connects with finite read/write timeouts before any blocking call.
pub fn bounded_read(addr: &str, timeout: Duration) -> std::io::Result<[u8; 4]> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    Ok(header)
}
