//! D4 bad: float math and raw `.0` arithmetic on quantity newtypes.

/// Nanoseconds as a raw-field newtype.
pub struct Ns(pub u64);

/// Averages two durations by poking at the field directly.
pub fn midpoint(a: Ns, b: Ns) -> Ns {
    Ns((a.0 + b.0) / 2)
}

/// Converts to floating seconds — rounding differs across platforms.
pub fn to_seconds(t: Ns) -> f64 {
    (t.0 as f64) / 1e9
}
