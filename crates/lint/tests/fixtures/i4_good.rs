//! I4 good: every pub caller of the contract-documented API carries the
//! ordering contract in its own doc; private helpers are exempt.

/// Pops the next event in (time, seq) FIFO order; callers must preserve
/// this order when re-queueing.
pub fn pop_next(queue: &mut Vec<u64>) -> Option<u64> {
    queue.pop()
}

/// Drains a batch of events into `out`, preserving (time, seq) order —
/// `out` is append-only, so the FIFO contract of `pop_next` survives.
pub fn drain_batch(queue: &mut Vec<u64>, out: &mut Vec<u64>) {
    while let Some(ev) = pop_next(queue) {
        out.push(ev);
    }
}

/// Private callers carry no propagation obligation.
fn internal_drain(queue: &mut Vec<u64>) {
    while pop_next(queue).is_some() {}
}
