//! D2 good: time comes from the simulation clock, not the host.

/// Elapsed simulated picoseconds between two explicit instants.
pub fn elapsed_ps(start_ps: u64, end_ps: u64) -> u64 {
    end_ps.saturating_sub(start_ps)
}
