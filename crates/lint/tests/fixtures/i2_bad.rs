//! I2 bad: a panic three calls below `WorldState::handle_one` — the
//! chain the per-crate D5 blanket cannot rank, flagged only because the
//! hot loop can actually reach it.

/// The simulated world: one event queue, one slab.
pub struct WorldState {
    queue: Vec<u64>,
}

impl WorldState {
    /// Hot-loop entry: dispatches one event.
    pub fn handle_one(&mut self) {
        step(&mut self.queue);
    }
}

/// First hop: advances the queue.
fn step(queue: &mut Vec<u64>) {
    deliver(queue);
}

/// Second hop: delivers the head event.
fn deliver(queue: &mut Vec<u64>) {
    route(queue.len() as u64);
}

/// Third hop: the panic the entry can reach.
fn route(lid: u64) {
    if lid > 48 {
        panic!("no route for LID {lid}");
    }
}

/// Unreachable from the entry: not flagged despite the unwrap — this is
/// the precision D5 lacked.
pub fn offline_report(v: Option<u64>) -> u64 {
    v.unwrap()
}
