//! D9 bad: blocking socket I/O with no finite timeout — one stalled
//! peer wedges the handler thread forever.

use std::io::Read;
use std::net::TcpStream;

/// Explicitly configures an infinite read wait, then blocks on it.
pub fn serve_forever(mut stream: TcpStream) -> std::io::Result<Vec<u8>> {
    stream.set_read_timeout(None)?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Never configures any read timeout at all before the blocking read.
pub fn bare_read(addr: &str) -> std::io::Result<[u8; 4]> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    Ok(header)
}
