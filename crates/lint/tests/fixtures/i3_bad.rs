//! I3 bad: shard-executed code reaches process-global state — a
//! non-atomic table *and* an undeclared atomic counter, both side
//! channels the deterministic window merge never sees.

static ROUTE_CACHE: [u8; 64] = [0; 64];
static WINDOW_HITS: AtomicU64 = AtomicU64::new(0);

/// Shard window entry: drains one conservative-lookahead window.
pub fn run_window(events: &mut Vec<u64>) {
    while let Some(ev) = events.pop() {
        dispatch(ev);
    }
}

/// Dispatches one event, consulting the global route cache.
fn dispatch(ev: u64) {
    WINDOW_HITS.fetch_add(1, Relaxed);
    let _port = ROUTE_CACHE[(ev % 64) as usize];
}
