//! D10 bad: shard worker code sharing state through ad-hoc sync
//! primitives instead of the mailbox.

use std::sync::{mpsc, Mutex};

/// Cross-shard completions shoved through a mutex-guarded vec: whatever
/// order workers grab the lock in becomes the result order.
pub static COMPLETIONS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// A raw channel between shard workers bypasses the `(time, seq)`
/// window merge entirely.
pub fn side_channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}

/// Interior mutability smuggled into a shard domain.
pub struct SharedCursor {
    /// Position other shards mutate behind the partitioner's back.
    pub pos: std::cell::Cell<u64>,
}
