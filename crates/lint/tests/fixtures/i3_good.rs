//! I3 good: shard-executed code owns its state — the route cache lives
//! in the shard's world, and nothing reachable touches a `static`.

/// Per-shard state: everything the window body may touch.
pub struct ShardWorld {
    route_cache: [u8; 64],
    hits: u64,
}

/// Shard window entry: drains one conservative-lookahead window.
pub fn run_window(world: &mut ShardWorld, events: &mut Vec<u64>) {
    while let Some(ev) = events.pop() {
        dispatch(world, ev);
    }
}

/// Dispatches one event against shard-owned state only.
fn dispatch(world: &mut ShardWorld, ev: u64) {
    world.hits += 1;
    let _port = world.route_cache[(ev % 64) as usize];
}

/// A static outside the shard-reachable set is not I3's business (D10
/// and its allowlist govern those).
static COLD_TABLE: [u8; 4] = [0; 4];

/// Unreachable from the window entry.
pub fn offline_summary() -> u8 {
    COLD_TABLE[0]
}
