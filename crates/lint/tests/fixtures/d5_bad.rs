//! D5 bad: panics in the hot loop abort the whole sweep.

/// Pops the queue head, panicking on empty or zero entries.
pub fn drain_head(q: &mut Vec<u32>) -> u32 {
    let head = q.pop().unwrap();
    if head == 0 {
        panic!("zero entry in queue");
    }
    head
}
