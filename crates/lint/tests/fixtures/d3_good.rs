//! D3 good: randomness forks off the seeded simulation stream.

use rperf_sim::SimRng;

/// Draws jitter from a named fork of the experiment's seeded RNG.
pub fn jitter(rng: &mut SimRng) -> u64 {
    rng.fork("jitter").next_u64()
}
