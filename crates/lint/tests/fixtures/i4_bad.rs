//! I4 bad: a pub fn calls an ordering-contract-documented API but its
//! own doc says nothing about ordering — the contract obligation is
//! dropped at the crate boundary.

/// Pops the next event in (time, seq) FIFO order; callers must preserve
/// this order when re-queueing.
pub fn pop_next(queue: &mut Vec<u64>) -> Option<u64> {
    queue.pop()
}

/// Drains a batch of events into `out`.
pub fn drain_batch(queue: &mut Vec<u64>, out: &mut Vec<u64>) {
    while let Some(ev) = pop_next(queue) {
        out.push(ev);
    }
}
