//! D1 bad: unordered hash containers in a deterministic crate.

use std::collections::HashMap;

/// Tallies flows — but `HashMap` iteration order varies per process.
pub fn tally(flows: &[u32]) -> HashMap<u32, u64> {
    let mut seen: HashMap<u32, u64> = HashMap::new();
    for f in flows {
        *seen.entry(*f).or_default() += 1;
    }
    seen
}
