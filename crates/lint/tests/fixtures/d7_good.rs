//! D7 good: the ordering contract is part of the documented API.

/// Removes and returns the earliest event. Events with equal timestamps
/// pop in schedule (FIFO) order, keyed by sequence number.
pub fn pop_event() -> Option<u32> {
    None
}
