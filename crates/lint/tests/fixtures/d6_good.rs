//! D6 good: the crate root forbids unsafe and the read is checked.

#![forbid(unsafe_code)]

/// Reads the first element, defaulting on empty input.
pub fn peek(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}
