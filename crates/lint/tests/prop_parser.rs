//! Fuzz suite for the lint front end (DESIGN.md §5.1): the lexer, the
//! item-tree parser, and the call-graph builder must never panic — on
//! random byte soup, on Rust-shaped token soup, or on truncated and
//! byte-mutated copies of real workspace sources — and every span they
//! report must land inside the input.
//!
//! The linter runs on every `make ci`; a panic on a half-saved file
//! would take the whole gate down, so "never panic, report what you
//! can" is part of the tool's contract (`lexer` module docs).

use proptest::prelude::*;
use rperf_lint::graph::Graph;
use rperf_lint::lexer::lex;
use rperf_lint::parse;
use rperf_lint::SourceFile;

/// Real workspace sources used as mutation seeds: the linter's own
/// front end (self-hosting makes regressions immediate) plus the
/// hot-loop code the interprocedural rules care most about.
const SEEDS: &[&str] = &[
    include_str!("../src/lexer.rs"),
    include_str!("../src/parse.rs"),
    include_str!("../src/graph.rs"),
    include_str!("../../fabric/src/shard.rs"),
];

/// Fragments that collide into plausible-but-broken Rust: item
/// keywords, attribute syntax, unterminated literals, doc comments.
const VOCAB: &[&str] = &[
    "fn",
    "pub",
    "impl",
    "mod",
    "use",
    "static",
    "struct",
    "trait",
    "for",
    "where",
    "dyn",
    "mut",
    "self",
    "Self",
    "crate",
    "as",
    "#",
    "!",
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "cfg",
    "test",
    "feature",
    "=",
    "\"sim-prof\"",
    ":",
    ";",
    ",",
    "-",
    ">",
    "&",
    "'a",
    "f",
    "g",
    "World",
    "Atomic",
    "unwrap",
    "expect",
    "panic",
    "debug_assert",
    ".",
    "::",
    "0x1F",
    "1.5e9",
    "b'x'",
    "r#\"raw\"#",
    "r#fn",
    "\"unterminated",
    "'q",
    "/*",
    "*/",
    "// line",
    "/// doc",
    "//! inner",
    "/** block */",
];

/// Every check the fuzzers share: lex, assert spans, parse, assert item
/// positions, mask features, build the graph, walk it.
fn front_end_never_panics(src: &str) {
    let tokens = lex(src);
    let lines: Vec<&str> = src.split('\n').collect();
    for t in &tokens {
        assert!(
            t.line >= 1 && (t.line as usize) <= lines.len(),
            "line {} out of bounds",
            t.line
        );
        let on_line = lines[t.line as usize - 1].chars().count();
        assert!(
            t.col >= 1 && (t.col as usize) <= on_line,
            "col {} out of bounds on line {} ({} chars)",
            t.col,
            t.line,
            on_line
        );
        assert!(!t.text.is_empty(), "empty token at {}:{}", t.line, t.col);
    }

    let tree = parse::parse(&tokens);
    for f in &tree.fns {
        if let Some((a, b)) = f.body {
            assert!(
                a <= b && b < tokens.len(),
                "fn `{}` body {a}..{b} out of bounds",
                f.name
            );
        }
        assert!(f.line >= 1 && (f.line as usize) <= lines.len());
    }
    for s in &tree.statics {
        assert!(s.line >= 1 && (s.line as usize) <= lines.len());
    }

    let mask = parse::off_feature_mask(&tokens, &["sim-prof".to_string()]);
    assert_eq!(
        mask.len(),
        tokens.len(),
        "feature mask must cover every token"
    );

    // The graph builder consumes whatever the parser produced; it must
    // hold up even when the item tree came from garbage.
    let file = SourceFile::analyze("fuzz/input.rs", "fuzz", false, src);
    let graph = Graph::build(std::slice::from_ref(&file), &["sim-prof".to_string()]);
    let entries = graph.match_entries(&["fuzz::f*".to_string(), "World::g".to_string()]);
    let parent = graph.reach(&entries);
    for (id, p) in parent.iter().enumerate() {
        if p.is_some() {
            // Rendering a chain exercises the parent-pointer walk.
            let _ = graph.chain(&parent, id);
        }
    }
}

proptest! {
    /// Arbitrary bytes (lossily decoded): the lexer's "never fails"
    /// contract on inputs that are not Rust at all.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        front_end_never_panics(&src);
    }

    /// Rust-shaped fragment collisions: unterminated strings next to
    /// attribute openers, doc comments mid-item, stray braces.
    #[test]
    fn token_soup_never_panics(
        picks in prop::collection::vec(prop::sample::select(VOCAB.to_vec()), 0..96),
        glue in any::<bool>(),
    ) {
        let sep = if glue { "" } else { " " };
        let src = picks.join(sep);
        front_end_never_panics(&src);
    }

    /// Real workspace sources truncated at an arbitrary char boundary:
    /// the half-saved-file case the linter must survive.
    #[test]
    fn truncated_workspace_source_never_panics(seed in 0usize..4, frac in 0u32..1000) {
        let full = SEEDS[seed];
        let cut = (full.len() as u64 * u64::from(frac) / 1000) as usize;
        let mut end = cut.min(full.len());
        while !full.is_char_boundary(end) {
            end -= 1;
        }
        front_end_never_panics(&full[..end]);
    }

    /// Real workspace sources with one byte overwritten (then lossily
    /// re-decoded): single-keystroke corruption anywhere in the file.
    #[test]
    fn mutated_workspace_source_never_panics(
        seed in 0usize..4,
        pos in any::<u32>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        let at = pos as usize % bytes.len();
        bytes[at] = byte;
        let src = String::from_utf8_lossy(&bytes);
        front_end_never_panics(&src);
    }
}

/// Nesting far past the parser's recursion guard (`MAX_DEPTH`): the
/// parser must flatten, not overflow the stack.
#[test]
fn pathological_nesting_never_panics() {
    let mut src = String::new();
    for i in 0..512 {
        src.push_str(&format!("mod m{i} {{ impl T{i} {{ fn f{i}() {{"));
    }
    src.push_str("panic!(\"deep\");");
    for _ in 0..512 {
        src.push_str("} } }");
    }
    front_end_never_panics(&src);
}

/// The seed files themselves — uncorrupted — must of course pass the
/// same span and mask invariants.
#[test]
fn pristine_seeds_hold_invariants() {
    for seed in SEEDS {
        front_end_never_panics(seed);
    }
}
