//! Fixture corpus for the rule catalog: one good + one bad file per
//! rule under `tests/fixtures/`, with golden diagnostic output, plus
//! the self-check that the workspace itself is lint-clean.
//!
//! Regenerate the `.expected` goldens after an intentional diagnostic
//! change with `LINT_BLESS=1 cargo test -p rperf-lint --test fixtures`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

use rperf_lint::{lint_source, lint_workspace, Config};

const RULE_IDS: [&str; 10] = ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10"];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A config enabling exactly one rule, scoped to the fixture crate key.
fn rule_config(id: &str) -> Config {
    let toml = format!("[[rule]]\nid = \"{id}\"\ncrates = [\"fixtures\"]\n");
    Config::parse(&toml).expect("fixture rule config parses")
}

/// Lints one fixture file under its rule, returning rendered diagnostics.
fn lint_fixture(name: &str, id: &str) -> String {
    let path = fixture_dir().join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let label = format!("crates/lint/tests/fixtures/{name}");
    // The D6 fixtures model crate roots (the forbid-attribute check only
    // applies there); every other fixture is an ordinary module file.
    let is_crate_root = name.starts_with("d6");
    lint_source(&label, "fixtures", is_crate_root, &src, &rule_config(id))
        .iter()
        .map(rperf_lint::Diagnostic::render)
        .collect()
}

#[test]
fn bad_fixtures_match_golden_diagnostics() {
    let bless = std::env::var("LINT_BLESS").is_ok();
    for id in RULE_IDS {
        let stem = id.to_lowercase();
        let got = lint_fixture(&format!("{stem}_bad.rs"), id);
        assert!(!got.is_empty(), "{stem}_bad.rs must trigger {id}");
        assert!(
            got.contains(&format!("[{id}]")),
            "{stem}_bad.rs diagnostics must carry the {id} tag:\n{got}"
        );
        let golden = fixture_dir().join(format!("{stem}_bad.expected"));
        if bless {
            fs::write(&golden, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("read {stem}_bad.expected (bless with LINT_BLESS=1): {e}"));
        assert_eq!(
            got, want,
            "{stem}_bad.rs diagnostics drifted from the golden; if intentional, \
             re-bless with LINT_BLESS=1"
        );
    }
}

#[test]
fn good_fixtures_are_clean() {
    for id in RULE_IDS {
        let stem = id.to_lowercase();
        let got = lint_fixture(&format!("{stem}_good.rs"), id);
        assert!(
            got.is_empty(),
            "{stem}_good.rs must pass {id} but produced:\n{got}"
        );
    }
}

/// The workspace itself must be clean under the checked-in `lint.toml`,
/// with no stale allowlist entries — the same gate `make lint-invariants`
/// enforces, run as an ordinary test so `cargo test` catches regressions.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let cfg = Config::parse(&text).expect("lint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("walk workspace");
    let rendered: String = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has invariant-lint violations:\n{rendered}"
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale [[allow]] entries in lint.toml:\n{}",
        report.unused_allows.join("\n")
    );
}
