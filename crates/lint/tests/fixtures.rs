//! Fixture corpus for the rule catalog: one good + one bad file per
//! rule under `tests/fixtures/`, with golden diagnostic output, plus
//! the self-check that the workspace itself is lint-clean.
//!
//! Regenerate the `.expected` goldens after an intentional diagnostic
//! change with `LINT_BLESS=1 cargo test -p rperf-lint --test fixtures`.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};

use rperf_lint::{lint_source, lint_workspace, Config};

const RULE_IDS: [&str; 14] = [
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "I1", "I2", "I3", "I4",
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A config enabling exactly one rule, scoped to the fixture crate key.
/// The interprocedural rules get fixture-local entry points: each
/// `iN_*.rs` file is a self-contained mini-workspace whose entry fn
/// mirrors the real one (`fig_latency`, `WorldState::handle_one`, …).
fn rule_config(id: &str) -> Config {
    let extra = match id {
        "I1" => "entries = [\"fig_latency\"]\n",
        "I2" => "entries = [\"WorldState::handle_one\"]\n",
        "I3" => "entries = [\"run_window\"]\n",
        "I4" => "api_crate = \"fixtures\"\n",
        _ => "",
    };
    let toml = format!("[[rule]]\nid = \"{id}\"\ncrates = [\"fixtures\"]\n{extra}");
    Config::parse(&toml).expect("fixture rule config parses")
}

/// Lints one fixture file under its rule, returning rendered diagnostics.
fn lint_fixture(name: &str, id: &str) -> String {
    let path = fixture_dir().join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let label = format!("crates/lint/tests/fixtures/{name}");
    // The D6 fixtures model crate roots (the forbid-attribute check only
    // applies there); every other fixture is an ordinary module file.
    let is_crate_root = name.starts_with("d6");
    lint_source(&label, "fixtures", is_crate_root, &src, &rule_config(id))
        .iter()
        .map(rperf_lint::Diagnostic::render)
        .collect()
}

#[test]
fn bad_fixtures_match_golden_diagnostics() {
    let bless = std::env::var("LINT_BLESS").is_ok();
    for id in RULE_IDS {
        let stem = id.to_lowercase();
        let got = lint_fixture(&format!("{stem}_bad.rs"), id);
        assert!(!got.is_empty(), "{stem}_bad.rs must trigger {id}");
        assert!(
            got.contains(&format!("[{id}]")),
            "{stem}_bad.rs diagnostics must carry the {id} tag:\n{got}"
        );
        let golden = fixture_dir().join(format!("{stem}_bad.expected"));
        if bless {
            fs::write(&golden, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&golden)
            .unwrap_or_else(|e| panic!("read {stem}_bad.expected (bless with LINT_BLESS=1): {e}"));
        assert_eq!(
            got, want,
            "{stem}_bad.rs diagnostics drifted from the golden; if intentional, \
             re-bless with LINT_BLESS=1"
        );
    }
}

#[test]
fn good_fixtures_are_clean() {
    for id in RULE_IDS {
        let stem = id.to_lowercase();
        let got = lint_fixture(&format!("{stem}_good.rs"), id);
        assert!(
            got.is_empty(),
            "{stem}_good.rs must pass {id} but produced:\n{got}"
        );
    }
}

/// The workspace itself must be clean under the checked-in `lint.toml`,
/// with no stale allowlist entries — the same gate `make lint-invariants`
/// enforces, run as an ordinary test so `cargo test` catches regressions.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let cfg = Config::parse(&text).expect("lint.toml parses");
    let report = lint_workspace(&root, &cfg, 1).expect("walk workspace");
    let rendered: String = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has invariant-lint violations:\n{rendered}"
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale [[allow]] entries in lint.toml:\n{}",
        report.unused_allows.join("\n")
    );
}

/// The parallel scan must be byte-identical at any thread count — the
/// same guarantee the sweep runner makes for `--jobs N`.
#[test]
fn workspace_report_is_jobs_invariant() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let cfg = Config::parse(&text).expect("lint.toml parses");
    let json1 = rperf_lint::report_json(&lint_workspace(&root, &cfg, 1).expect("jobs=1"));
    let json4 = rperf_lint::report_json(&lint_workspace(&root, &cfg, 4).expect("jobs=4"));
    let json0 = rperf_lint::report_json(&lint_workspace(&root, &cfg, 0).expect("jobs=auto"));
    assert_eq!(json1, json4, "jobs=1 vs jobs=4 reports differ");
    assert_eq!(json1, json0, "jobs=1 vs jobs=auto reports differ");
}

/// Stale `[[allow]]` entries are a hard failure, not a warning: an
/// entry that matches nothing must surface in `unused_allows` (the
/// binary exits non-zero on any).
#[test]
fn stale_allow_entries_are_reported() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let toml = "[[rule]]\nid = \"D5\"\ncrates = [\"lint\"]\n\n\
                [[allow]]\nrule = \"D5\"\npath = \"crates/lint/src/never_exists.rs\"\n\
                justification = \"deliberately stale fixture entry\"\n";
    let cfg = Config::parse(toml).expect("stale-allow config parses");
    let report = lint_workspace(&root, &cfg, 1).expect("walk workspace");
    assert_eq!(
        report.unused_allows.len(),
        1,
        "the never-matching allow must be reported stale: {:?}",
        report.unused_allows
    );
    assert!(
        report.unused_allows[0].contains("never_exists.rs"),
        "{:?}",
        report.unused_allows
    );
}
