//! Property tests for the switch: flow-control conservation, buffer
//! bounds, work conservation and scheduling-policy contracts.

use proptest::prelude::*;
use rperf_model::arena::PacketSlab;
use rperf_model::config::{ClusterConfig, SchedPolicy};
use rperf_model::ids::PacketId;
use rperf_model::{
    FlowId, Lid, MsgId, Packet, PacketKind, PortId, QpNum, ServiceLevel, Transport, Verb,
    VirtualLane,
};
use rperf_sim::{SimRng, SimTime};
use rperf_switch::{CreditLedger, Switch, SwitchAction};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn packet(id: u64, dst: u16, payload: u64) -> Packet {
    Packet {
        id: PacketId::new(id),
        flow: FlowId::new(0),
        msg: MsgId::new(id),
        src: Lid::new(99),
        dst: Lid::new(dst),
        dst_qp: QpNum::new(1),
        sl: ServiceLevel::new(0),
        kind: PacketKind::Data {
            verb: Verb::Send,
            transport: Transport::Rc,
            index: 0,
            last: true,
        },
        payload,
        overhead: 32,
        injected_at: SimTime::ZERO,
    }
}

/// A harness that plays upstream + downstream for a switch, honoring
/// credits exactly like the fabric does.
struct Harness {
    sw: Switch,
    slab: PacketSlab,
    /// Credits each upstream port holds toward the switch, per VL.
    up_credits: Vec<CreditLedger>,
    wakes: BinaryHeap<Reverse<(u64, u8)>>,
    forwarded: Vec<(SimTime, Packet)>,
}

impl Harness {
    fn new(policy: SchedPolicy) -> Self {
        let cfg = {
            let mut c = ClusterConfig::omnet_simulator().switch;
            c.policy = policy;
            c
        };
        let buffer = cfg.input_buffer_bytes;
        let vls = cfg.vls;
        let ports = cfg.ports;
        let mut sw = Switch::new(
            cfg,
            ClusterConfig::omnet_simulator().link.data_rate(),
            SimRng::new(7),
        );
        for lid in 0..12u16 {
            sw.set_route(Lid::new(lid), PortId::new(lid as u8));
        }
        Harness {
            sw,
            slab: PacketSlab::new(),
            up_credits: (0..ports).map(|_| CreditLedger::new(vls, buffer)).collect(),
            wakes: BinaryHeap::new(),
            forwarded: Vec::new(),
        }
    }

    fn absorb(&mut self, now: SimTime, actions: Vec<SwitchAction>) {
        let mut downstream_frees = Vec::new();
        for a in actions {
            match a {
                SwitchAction::Wake { egress, at } => {
                    self.wakes.push(Reverse((at.as_ps(), egress.raw())));
                }
                SwitchAction::Transmit { egress, packet, .. } => {
                    // The (synthetic, infinitely fast) downstream peer frees
                    // its buffer as soon as the packet lands and consumes
                    // the packet out of the slab.
                    let pkt = self.slab.free(packet);
                    downstream_frees.push((egress, pkt.wire_size()));
                    self.forwarded.push((now, pkt));
                }
                SwitchAction::ReturnCredit { ingress, vl, bytes } => {
                    self.up_credits[ingress.index()].replenish(vl, bytes);
                }
            }
        }
        for (egress, bytes) in downstream_frees {
            let mut more = Vec::new();
            self.sw
                .credit_from_downstream(now, egress, VirtualLane::new(0), bytes, &mut more);
            self.absorb(now, more);
        }
    }

    /// Injects a packet if the upstream port holds credits; returns
    /// whether it was sent.
    fn inject(&mut self, now: SimTime, port: u8, pkt: Packet) -> bool {
        let vl = VirtualLane::new(0);
        let size = pkt.wire_size();
        if !self.up_credits[port as usize].consume(vl, size) {
            return false;
        }
        let handle = self.slab.alloc(pkt);
        let mut actions = Vec::new();
        self.sw
            .packet_arrival(now, PortId::new(port), handle, &self.slab, &mut actions);
        self.absorb(now, actions);
        true
    }

    /// Runs all pending wakes.
    fn drain(&mut self) -> SimTime {
        let mut last = SimTime::ZERO;
        let mut guard = 0;
        while let Some(Reverse((ps, egress))) = self.wakes.pop() {
            guard += 1;
            assert!(guard < 1_000_000, "wake storm");
            let t = SimTime::from_ps(ps);
            last = t;
            let mut actions = Vec::new();
            self.sw.egress_wake(t, PortId::new(egress), &mut actions);
            self.absorb(t, actions);
        }
        last
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lossless property: with credit-honoring upstreams, every injected
    /// packet is eventually forwarded exactly once, in any arrival order,
    /// and no buffer ever over-admits.
    #[test]
    fn work_conservation_and_no_violations(
        arrivals in prop::collection::vec(
            (0u8..6, 1u16..4, 1u64..4096, 0u64..5_000), 1..120),
        policy in prop::sample::select(vec![SchedPolicy::Fcfs, SchedPolicy::RoundRobin]),
    ) {
        let mut h = Harness::new(policy);
        let mut sent = 0usize;
        let mut arrivals = arrivals;
        // Sort by injection time to respect simulation causality.
        arrivals.sort_by_key(|&(_, _, _, t)| t);
        let mut id = 0;
        for (port, dst_raw, payload, t_ns) in arrivals {
            // Never send a packet to its own ingress port.
            let dst = if u16::from(port) == dst_raw % 12 { (dst_raw % 12) + 1 } else { dst_raw % 12 };
            id += 1;
            if h.inject(SimTime::from_ns(t_ns), port, packet(id, dst, payload)) {
                sent += 1;
            }
            h.drain();
        }
        h.drain();
        prop_assert_eq!(h.forwarded.len(), sent, "every admitted packet forwards");
        prop_assert_eq!(h.sw.stats().buffer_violations, 0);
        prop_assert_eq!(h.sw.total_buffered(), 0, "switch drains completely");
        prop_assert!(h.slab.is_empty(), "no packet handles may leak");
        // No duplicates.
        let mut ids: Vec<u64> = h.forwarded.iter().map(|(_, p)| p.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sent);
    }

    /// Credit conservation: at quiescence every upstream ledger is full
    /// again (credits consumed == credits returned).
    #[test]
    fn credits_conserved(
        arrivals in prop::collection::vec((0u8..6, 1u64..4096), 1..80),
    ) {
        let mut h = Harness::new(SchedPolicy::Fcfs);
        let mut id = 0;
        for (port, payload) in arrivals {
            id += 1;
            // All to port 7 (an otherwise idle egress).
            h.inject(SimTime::from_ns(id * 10), port, packet(id, 7, payload));
            h.drain();
        }
        h.drain();
        let full = ClusterConfig::omnet_simulator().switch.input_buffer_bytes;
        for ledger in &h.up_credits {
            prop_assert_eq!(ledger.available(VirtualLane::new(0)), full);
        }
    }

    /// FCFS contract: for a single egress, forwarding order equals
    /// arrival order.
    #[test]
    fn fcfs_forwards_in_arrival_order(
        ports in prop::collection::vec(0u8..6, 2..40),
    ) {
        let mut h = Harness::new(SchedPolicy::Fcfs);
        let mut injected = Vec::new();
        for (i, &port) in ports.iter().enumerate() {
            let id = i as u64 + 1;
            // Distinct, increasing arrival times; single destination 7.
            if h.inject(SimTime::from_ns(id * 50), port, packet(id, 7, 256)) {
                injected.push(id);
            }
        }
        h.drain();
        let order: Vec<u64> = h.forwarded.iter().map(|(_, p)| p.id.raw()).collect();
        prop_assert_eq!(order, injected, "FCFS must preserve arrival order");
    }
}
