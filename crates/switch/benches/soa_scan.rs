//! AoS vs SoA input-buffer head scans.
//!
//! The switch arbiter's inner loop reads, for every (ingress port, VL)
//! slot, the head packet's egress / eligibility / wire size. The original
//! layout was an array-of-structs (`Vec<Vec<VlBuffer>>`, one `VecDeque`
//! per slot, head fields behind two pointer hops); [`VlBufferArray`]
//! mirrors the head fields into flat per-field arrays with a nonempty
//! bitset so the scan touches contiguous memory and skips empty slots in
//! one `trailing_zeros` step.
//!
//! Three port counts: 8 (small edge switch), 36 (the SX6012's silicon,
//! Section III), 64 (director-class line card). 9 VLs throughout, ~40%
//! occupancy, which is the contended-arbitration regime of Figs. 11-12.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rperf_model::arena::PacketSlab;
use rperf_model::ids::PacketId;
use rperf_model::{
    FlowId, Lid, MsgId, Packet, PacketKind, PortId, QpNum, ServiceLevel, Transport, Verb,
    VirtualLane,
};
use rperf_sim::SimTime;
use rperf_switch::{BufEntry, VlBuffer, VlBufferArray};

const VLS: u8 = 9;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn entry(slab: &mut PacketSlab, rng: &mut Lcg, ports: u8, t: u64) -> BufEntry {
    let packet = slab.alloc(Packet {
        id: PacketId::new(t),
        flow: FlowId::new(0),
        msg: MsgId::new(t),
        src: Lid::new(1),
        dst: Lid::new(2),
        dst_qp: QpNum::new(0),
        sl: ServiceLevel::new(0),
        kind: PacketKind::Data {
            verb: Verb::Send,
            transport: Transport::Rc,
            index: 0,
            last: true,
        },
        payload: 4096,
        overhead: 52,
        injected_at: SimTime::ZERO,
    });
    BufEntry {
        packet,
        egress: PortId::new((rng.next() % u64::from(ports)) as u8),
        wire: 100 + rng.next() % 4096,
        arrival: SimTime::from_ns(t),
        eligible_at: SimTime::from_ns(t + rng.next() % 200),
    }
}

/// Both layouts filled with identical entries, plus the slots touched.
type FilledLayouts = (
    PacketSlab,
    Vec<Vec<VlBuffer>>,
    VlBufferArray,
    Vec<(PortId, VirtualLane)>,
);

/// Fills ~40% of the slots of both layouts with identical entries.
fn fill(ports: u8) -> FilledLayouts {
    let mut slab = PacketSlab::new();
    let mut rng = Lcg(42);
    let mut aos: Vec<Vec<VlBuffer>> = (0..ports)
        .map(|_| (0..VLS).map(|_| VlBuffer::new(1 << 20)).collect())
        .collect();
    let mut soa = VlBufferArray::new(ports, VLS, 1 << 20);
    let mut filled = Vec::new();
    for p in 0..ports {
        for v in 0..VLS {
            if rng.next() % 10 < 4 {
                let (port, vl) = (PortId::new(p), VirtualLane::new(v));
                let e = entry(&mut slab, &mut rng, ports, u64::from(p) * 64 + u64::from(v));
                aos[port.index()][vl.index()].push(e);
                soa.push(port, vl, e);
                filled.push((port, vl));
            }
        }
    }
    (slab, aos, soa, filled)
}

/// One arbitration-style pass: for a given egress, sum the wire sizes of
/// every eligible head destined to it.
fn scan_aos(aos: &[Vec<VlBuffer>], egress: PortId, now: SimTime) -> u64 {
    let mut sum = 0u64;
    for port in aos {
        for buf in port {
            if let Some(head) = buf.head() {
                if head.egress == egress && head.eligible_at <= now {
                    sum = sum.wrapping_add(head.wire);
                }
            }
        }
    }
    sum
}

fn scan_soa(soa: &VlBufferArray, egress: PortId, now: SimTime) -> u64 {
    let mut sum = 0u64;
    let egress_raw = egress.raw();
    for (w, &word) in soa.nonempty_words().iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let slot = w * 64 + word.trailing_zeros() as usize;
            word &= word - 1;
            if soa.head_egress_raw(slot) == egress_raw && soa.head_eligible(slot) <= now {
                sum = sum.wrapping_add(soa.head_wire(slot));
            }
        }
    }
    sum
}

fn bench_scans(c: &mut Criterion) {
    let now = SimTime::from_us(100);
    for ports in [8u8, 36, 64] {
        let (_slab, aos, soa, _) = fill(ports);
        // Both scans must agree, over all egresses, or the bench compares
        // different work.
        for p in 0..ports {
            assert_eq!(
                scan_aos(&aos, PortId::new(p), now),
                scan_soa(&soa, PortId::new(p), now)
            );
        }
        c.bench_function(&format!("soa_scan/aos_ports{ports}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in 0..ports {
                    acc = acc.wrapping_add(scan_aos(black_box(&aos), PortId::new(p), now));
                }
                black_box(acc)
            });
        });
        c.bench_function(&format!("soa_scan/soa_ports{ports}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in 0..ports {
                    acc = acc.wrapping_add(scan_soa(black_box(&soa), PortId::new(p), now));
                }
                black_box(acc)
            });
        });
    }
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
