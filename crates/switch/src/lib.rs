//! The input-buffered InfiniBand switch model.
//!
//! This is both the stand-in for the paper's Mellanox SX6012 (the
//! `hardware` profile: calibrated pipeline latency, µarch jitter,
//! arbitration scan costs) and the reimplementation of the Mellanox IB
//! OMNeT++ simulator the paper uses for scheduling-policy studies (the
//! `omnet_simulator` profile: no jitter, 32 KB input buffers).
//!
//! ## Architecture
//!
//! The switch is **input-buffered**: every ingress port has one FIFO per
//! virtual lane ([`VlBuffer`]), sized by the credit advertisement made to
//! the upstream sender. Packets are admitted on arrival (credits guarantee
//! space — a violation is a protocol bug and is counted), become *eligible*
//! after the ingress pipeline latency plus per-packet µarch jitter, and
//! wait for the output arbiter of their destination port.
//!
//! Each egress port runs a two-level arbiter:
//!
//! 1. **VL arbitration** ([`VlArbiter`]) — IB-spec high/low priority tables
//!    with weights and the *Limit of High Priority* budget.
//! 2. **Packet scheduling** within the chosen VL — FCFS (oldest arrival at
//!    this switch wins; the policy the paper concludes the SX6012 uses) or
//!    round-robin across ingress ports.
//!
//! Dequeuing a packet frees input-buffer space and returns a credit to the
//! upstream device; egress transmission obeys the *downstream* credit
//! ledger ([`CreditLedger`]), giving hop-by-hop lossless flow control.
//!
//! The device is a pure state machine: methods take the current time and
//! return [`SwitchAction`]s; the fabric crate owns event delivery. This
//! keeps the switch unit-testable without a simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod buffer;
mod credits;
mod device;
mod tables;
mod vlarb;

pub use arbiter::PacketScheduler;
pub use buffer::{BufEntry, VlBuffer, VlBufferArray};
pub use credits::{CreditLedger, CreditMatrix};
pub use device::{Switch, SwitchAction, SwitchStats};
pub use tables::ForwardingTable;
pub use vlarb::VlArbiter;
