//! Packet scheduling across ingress ports.

use rperf_model::config::SchedPolicy;
use rperf_model::PortId;
use rperf_sim::SimTime;

/// The per-egress packet scheduler: picks which ingress port's head packet
/// to forward next, among candidates already filtered to one virtual lane.
///
/// * **FCFS** — the packet that arrived at this switch earliest wins
///   (ties broken by port number). Under converged traffic this makes a
///   latency-sensitive packet wait behind *every* packet buffered anywhere
///   in the switch — Eq. 2 of the paper.
/// * **Round-robin** — ingress ports are visited cyclically, bounding the
///   wait to roughly one packet per active port.
///
/// # Examples
///
/// ```
/// use rperf_model::config::SchedPolicy;
/// use rperf_model::PortId;
/// use rperf_sim::SimTime;
/// use rperf_switch::PacketScheduler;
///
/// let mut fcfs = PacketScheduler::new(SchedPolicy::Fcfs, 12);
/// let picked = fcfs.pick(&[
///     (PortId::new(3), SimTime::from_ns(20)),
///     (PortId::new(1), SimTime::from_ns(10)),
/// ]);
/// assert_eq!(picked, Some(PortId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct PacketScheduler {
    policy: SchedPolicy,
    ports: u8,
    cursor: u8,
    /// Bytes served per ingress port (FairShare state).
    served: Vec<u64>,
}

impl PacketScheduler {
    /// Creates a scheduler for a switch with `ports` ingress ports.
    pub fn new(policy: SchedPolicy, ports: u8) -> Self {
        PacketScheduler {
            policy,
            ports,
            cursor: 0,
            served: vec![0; ports as usize],
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Picks the ingress port to serve among `candidates` (pairs of port
    /// and head-packet arrival time). Returns `None` if empty.
    pub fn pick(&mut self, candidates: &[(PortId, SimTime)]) -> Option<PortId> {
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            SchedPolicy::Fcfs => candidates
                .iter()
                .min_by_key(|(port, arrival)| (*arrival, port.raw()))
                .map(|(port, _)| *port),
            SchedPolicy::RoundRobin => {
                for step in 0..self.ports {
                    let p = (self.cursor + step) % self.ports;
                    if let Some((port, _)) = candidates.iter().find(|(port, _)| port.raw() == p) {
                        self.cursor = (p + 1) % self.ports;
                        return Some(*port);
                    }
                }
                None
            }
            SchedPolicy::FairShare => candidates
                .iter()
                .min_by_key(|(port, _)| (self.served[port.index()], port.raw()))
                .map(|(port, _)| *port),
        }
    }

    /// Records that `bytes` were forwarded from `port` (FairShare state;
    /// a no-op for the other policies).
    pub fn account(&mut self, port: PortId, bytes: u64) {
        if self.policy != SchedPolicy::FairShare {
            return;
        }
        self.served[port.index()] += bytes;
        // Periodically rebase so counters never overflow and idle ports do
        // not accrue an unbounded advantage.
        if self.served[port.index()] >= u64::MAX / 2 {
            let min = self.served.iter().min().copied().unwrap_or(0);
            for s in &mut self.served {
                *s -= min;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(entries: &[(u8, u64)]) -> Vec<(PortId, SimTime)> {
        entries
            .iter()
            .map(|&(p, t)| (PortId::new(p), SimTime::from_ns(t)))
            .collect()
    }

    #[test]
    fn fcfs_picks_oldest() {
        let mut s = PacketScheduler::new(SchedPolicy::Fcfs, 12);
        assert_eq!(
            s.pick(&cand(&[(0, 30), (1, 10), (2, 20)])),
            Some(PortId::new(1))
        );
    }

    #[test]
    fn fcfs_breaks_ties_by_port() {
        let mut s = PacketScheduler::new(SchedPolicy::Fcfs, 12);
        assert_eq!(s.pick(&cand(&[(5, 10), (2, 10)])), Some(PortId::new(2)));
    }

    #[test]
    fn rr_rotates_across_ports() {
        let mut s = PacketScheduler::new(SchedPolicy::RoundRobin, 4);
        let all = cand(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let order: Vec<u8> = (0..8).map(|_| s.pick(&all).unwrap().raw()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn rr_skips_idle_ports() {
        let mut s = PacketScheduler::new(SchedPolicy::RoundRobin, 4);
        let some = cand(&[(1, 0), (3, 0)]);
        let order: Vec<u8> = (0..4).map(|_| s.pick(&some).unwrap().raw()).collect();
        assert_eq!(order, vec![1, 3, 1, 3]);
    }

    #[test]
    fn rr_ignores_arrival_times() {
        let mut s = PacketScheduler::new(SchedPolicy::RoundRobin, 4);
        // Port 2 has the oldest packet but RR starts at the cursor.
        assert_eq!(s.pick(&cand(&[(2, 1), (0, 100)])), Some(PortId::new(0)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        for policy in [
            SchedPolicy::Fcfs,
            SchedPolicy::RoundRobin,
            SchedPolicy::FairShare,
        ] {
            let mut s = PacketScheduler::new(policy, 4);
            assert_eq!(s.pick(&[]), None);
        }
    }

    #[test]
    fn fair_share_prefers_least_served_port() {
        let mut s = PacketScheduler::new(SchedPolicy::FairShare, 4);
        let all = cand(&[(0, 0), (1, 0)]);
        // Port 0 wins the tie, then accrues bytes.
        assert_eq!(s.pick(&all), Some(PortId::new(0)));
        s.account(PortId::new(0), 4096);
        // Now port 1 is behind on service.
        assert_eq!(s.pick(&all), Some(PortId::new(1)));
        s.account(PortId::new(1), 64);
        // Port 1 still has served fewer bytes: it keeps winning.
        assert_eq!(s.pick(&all), Some(PortId::new(1)));
    }

    #[test]
    fn fair_share_lets_a_small_flow_bypass_bulk() {
        let mut s = PacketScheduler::new(SchedPolicy::FairShare, 4);
        // Bulk on port 0 has been served megabytes; a probe shows on port 3.
        s.account(PortId::new(0), 10_000_000);
        let got = s.pick(&cand(&[(0, 0), (3, 100)]));
        assert_eq!(got, Some(PortId::new(3)));
    }

    #[test]
    fn account_is_noop_for_other_policies() {
        let mut s = PacketScheduler::new(SchedPolicy::RoundRobin, 4);
        s.account(PortId::new(0), 1_000_000);
        let all = cand(&[(0, 0), (1, 0)]);
        assert_eq!(s.pick(&all), Some(PortId::new(0)), "RR unaffected by bytes");
    }
}
