//! Downstream credit accounting.

use rperf_model::VirtualLane;

/// Tracks the flow-control credits a device holds toward *one* downstream
/// peer, per virtual lane.
///
/// Credits are in bytes of the peer's advertised input buffer. A sender
/// must [`CreditLedger::consume`] before transmitting a packet on a VL and
/// receives the bytes back ([`CreditLedger::replenish`]) when the peer
/// frees them. Conservation is a protocol invariant:
/// `initial = available + in flight downstream`.
///
/// # Examples
///
/// ```
/// use rperf_model::VirtualLane;
/// use rperf_switch::CreditLedger;
///
/// let mut c = CreditLedger::new(9, 32 * 1024);
/// let vl0 = VirtualLane::new(0);
/// assert!(c.consume(vl0, 4148));
/// assert_eq!(c.available(vl0), 32 * 1024 - 4148);
/// c.replenish(vl0, 4148);
/// assert_eq!(c.available(vl0), 32 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct CreditLedger {
    initial: Vec<u64>,
    available: Vec<u64>,
}

impl CreditLedger {
    /// Creates a ledger for `vls` lanes, each granted `bytes_per_vl`.
    pub fn new(vls: u8, bytes_per_vl: u64) -> Self {
        CreditLedger {
            initial: vec![bytes_per_vl; vls as usize],
            available: vec![bytes_per_vl; vls as usize],
        }
    }

    /// Creates a ledger with unlimited credits (for modelling a link with
    /// no flow control, e.g. delivery into an infinite sink).
    pub fn unlimited(vls: u8) -> Self {
        Self::new(vls, u64::MAX / 2)
    }

    /// Number of lanes tracked.
    pub fn vls(&self) -> u8 {
        self.available.len() as u8
    }

    /// Credits currently available on `vl`.
    ///
    /// # Panics
    ///
    /// Panics if `vl` is beyond the configured lane count.
    pub fn available(&self, vl: VirtualLane) -> u64 {
        self.available[vl.index()]
    }

    /// `true` if a packet of `bytes` may be sent on `vl`.
    pub fn can_send(&self, vl: VirtualLane, bytes: u64) -> bool {
        self.available[vl.index()] >= bytes
    }

    /// Spends credits for a transmission. Returns `false` (and spends
    /// nothing) if insufficient.
    pub fn consume(&mut self, vl: VirtualLane, bytes: u64) -> bool {
        let a = &mut self.available[vl.index()];
        if *a < bytes {
            return false;
        }
        *a -= bytes;
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            self.available[vl.index()] <= self.initial[vl.index()],
            "sim-sanitizer: {vl} credits exceed the initial grant after consume"
        );
        true
    }

    /// Returns freed credits from the peer, saturating at the initial
    /// grant (over-replenishment indicates a protocol bug and is clamped).
    pub fn replenish(&mut self, vl: VirtualLane, bytes: u64) {
        let i = vl.index();
        // (Clamping small over-replenishment is documented API slack; a
        // single return larger than the whole grant is always a bug.)
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            bytes <= self.initial[i],
            "sim-sanitizer: credit return of {bytes} B on {vl} exceeds the whole grant of {} B",
            self.initial[i]
        );
        self.available[i] = (self.available[i] + bytes).min(self.initial[i]);
    }

    /// Bytes currently in flight (consumed but not yet replenished) on `vl`.
    pub fn in_flight(&self, vl: VirtualLane) -> u64 {
        self.initial[vl.index()] - self.available[vl.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_and_replenish_conserve() {
        let mut c = CreditLedger::new(2, 10_000);
        let vl = VirtualLane::new(0);
        assert!(c.consume(vl, 4_000));
        assert!(c.consume(vl, 4_000));
        assert_eq!(c.available(vl), 2_000);
        assert_eq!(c.in_flight(vl), 8_000);
        c.replenish(vl, 4_000);
        assert_eq!(c.available(vl), 6_000);
        assert_eq!(c.in_flight(vl), 4_000);
    }

    #[test]
    fn insufficient_credits_refused() {
        let mut c = CreditLedger::new(1, 1_000);
        let vl = VirtualLane::new(0);
        assert!(!c.consume(vl, 2_000));
        assert_eq!(c.available(vl), 1_000, "refused consume must not spend");
        assert!(!c.can_send(vl, 1_001));
        assert!(c.can_send(vl, 1_000));
    }

    #[test]
    fn lanes_are_independent() {
        let mut c = CreditLedger::new(2, 1_000);
        let vl0 = VirtualLane::new(0);
        let vl1 = VirtualLane::new(1);
        assert!(c.consume(vl0, 1_000));
        assert_eq!(c.available(vl0), 0);
        assert_eq!(c.available(vl1), 1_000);
    }

    // The sanitizer turns the silent clamp into a debug_assert, so this
    // test only makes sense without it.
    #[cfg(not(feature = "sim-sanitizer"))]
    #[test]
    fn over_replenish_clamped() {
        let mut c = CreditLedger::new(1, 1_000);
        let vl = VirtualLane::new(0);
        c.replenish(vl, 5_000);
        assert_eq!(c.available(vl), 1_000);
    }

    #[test]
    fn unlimited_is_effectively_infinite() {
        let mut c = CreditLedger::unlimited(1);
        let vl = VirtualLane::new(0);
        for _ in 0..1_000 {
            assert!(c.consume(vl, u32::MAX as u64));
        }
    }
}
