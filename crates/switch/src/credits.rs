//! Downstream credit accounting.

use rperf_model::{PortId, VirtualLane};

/// Tracks the flow-control credits a device holds toward *one* downstream
/// peer, per virtual lane.
///
/// Credits are in bytes of the peer's advertised input buffer. A sender
/// must [`CreditLedger::consume`] before transmitting a packet on a VL and
/// receives the bytes back ([`CreditLedger::replenish`]) when the peer
/// frees them. Conservation is a protocol invariant:
/// `initial = available + in flight downstream`.
///
/// # Examples
///
/// ```
/// use rperf_model::VirtualLane;
/// use rperf_switch::CreditLedger;
///
/// let mut c = CreditLedger::new(9, 32 * 1024);
/// let vl0 = VirtualLane::new(0);
/// assert!(c.consume(vl0, 4148));
/// assert_eq!(c.available(vl0), 32 * 1024 - 4148);
/// c.replenish(vl0, 4148);
/// assert_eq!(c.available(vl0), 32 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct CreditLedger {
    initial: Vec<u64>,
    available: Vec<u64>,
}

impl CreditLedger {
    /// Creates a ledger for `vls` lanes, each granted `bytes_per_vl`.
    pub fn new(vls: u8, bytes_per_vl: u64) -> Self {
        CreditLedger {
            initial: vec![bytes_per_vl; vls as usize],
            available: vec![bytes_per_vl; vls as usize],
        }
    }

    /// Creates a ledger with unlimited credits (for modelling a link with
    /// no flow control, e.g. delivery into an infinite sink).
    pub fn unlimited(vls: u8) -> Self {
        Self::new(vls, u64::MAX / 2)
    }

    /// Number of lanes tracked.
    pub fn vls(&self) -> u8 {
        self.available.len() as u8
    }

    /// Credits currently available on `vl`.
    ///
    /// # Panics
    ///
    /// Panics if `vl` is beyond the configured lane count.
    pub fn available(&self, vl: VirtualLane) -> u64 {
        self.available[vl.index()]
    }

    /// `true` if a packet of `bytes` may be sent on `vl`.
    pub fn can_send(&self, vl: VirtualLane, bytes: u64) -> bool {
        self.available[vl.index()] >= bytes
    }

    /// Spends credits for a transmission. Returns `false` (and spends
    /// nothing) if insufficient.
    pub fn consume(&mut self, vl: VirtualLane, bytes: u64) -> bool {
        let a = &mut self.available[vl.index()];
        if *a < bytes {
            return false;
        }
        *a -= bytes;
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            self.available[vl.index()] <= self.initial[vl.index()],
            "sim-sanitizer: {vl} credits exceed the initial grant after consume"
        );
        true
    }

    /// Returns freed credits from the peer, saturating at the initial
    /// grant (over-replenishment indicates a protocol bug and is clamped).
    pub fn replenish(&mut self, vl: VirtualLane, bytes: u64) {
        let i = vl.index();
        // (Clamping small over-replenishment is documented API slack; a
        // single return larger than the whole grant is always a bug.)
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            bytes <= self.initial[i],
            "sim-sanitizer: credit return of {bytes} B on {vl} exceeds the whole grant of {} B",
            self.initial[i]
        );
        self.available[i] = (self.available[i] + bytes).min(self.initial[i]);
    }

    /// Bytes currently in flight (consumed but not yet replenished) on `vl`.
    pub fn in_flight(&self, vl: VirtualLane) -> u64 {
        self.initial[vl.index()] - self.available[vl.index()]
    }
}

/// Struct-of-arrays credit bank for a whole switch: the per-VL counters of
/// every egress port's downstream ledger laid out in two flat arrays
/// (`initial`, `available`), indexed `port · vls + vl`.
///
/// Behaviourally identical to a `Vec<CreditLedger>` — consume refuses
/// without spending, replenish clamps to the initial grant — but the
/// credit-availability checks inside an arbitration round read a contiguous
/// row instead of chasing a ledger object per port.
///
/// # Examples
///
/// ```
/// use rperf_model::{PortId, VirtualLane};
/// use rperf_switch::CreditMatrix;
///
/// let mut m = CreditMatrix::new(12, 9, 32 * 1024);
/// let (p, vl) = (PortId::new(4), VirtualLane::new(0));
/// assert!(m.consume(p, vl, 4148));
/// assert_eq!(m.available(p, vl), 32 * 1024 - 4148);
/// m.replenish(p, vl, 4148);
/// assert_eq!(m.available(p, vl), 32 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct CreditMatrix {
    vls: usize,
    initial: Vec<u64>,
    available: Vec<u64>,
}

impl CreditMatrix {
    /// Creates a matrix for `ports` egress ports × `vls` lanes, each slot
    /// granted `bytes_per_vl`.
    pub fn new(ports: u8, vls: u8, bytes_per_vl: u64) -> Self {
        let slots = ports as usize * vls as usize;
        CreditMatrix {
            vls: vls as usize,
            initial: vec![bytes_per_vl; slots],
            available: vec![bytes_per_vl; slots],
        }
    }

    /// Lanes per port.
    pub fn vls(&self) -> u8 {
        self.vls as u8
    }

    #[inline]
    fn idx(&self, port: PortId, vl: VirtualLane) -> usize {
        port.index() * self.vls + vl.index()
    }

    /// Overwrites one port's row from a [`CreditLedger`] (used when the
    /// downstream peer's advertisement differs from switch-buffer symmetry,
    /// e.g. a host RNIC).
    pub fn set_port(&mut self, port: PortId, ledger: &CreditLedger) {
        debug_assert_eq!(usize::from(ledger.vls()), self.vls);
        for v in 0..ledger.vls().min(self.vls as u8) {
            let vl = VirtualLane::new(v);
            let i = self.idx(port, vl);
            self.initial[i] = ledger.available(vl) + ledger.in_flight(vl);
            self.available[i] = ledger.available(vl);
        }
    }

    /// Credits currently available on (`port`, `vl`).
    #[inline]
    pub fn available(&self, port: PortId, vl: VirtualLane) -> u64 {
        self.available[self.idx(port, vl)]
    }

    /// `true` if a packet of `bytes` may be sent on (`port`, `vl`).
    #[inline]
    pub fn can_send(&self, port: PortId, vl: VirtualLane, bytes: u64) -> bool {
        self.available[self.idx(port, vl)] >= bytes
    }

    /// Spends credits for a transmission. Returns `false` (and spends
    /// nothing) if insufficient.
    #[inline]
    pub fn consume(&mut self, port: PortId, vl: VirtualLane, bytes: u64) -> bool {
        let i = self.idx(port, vl);
        let a = &mut self.available[i];
        if *a < bytes {
            return false;
        }
        *a -= bytes;
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            self.available[i] <= self.initial[i],
            "sim-sanitizer: {vl} credits exceed the initial grant after consume"
        );
        true
    }

    /// Returns freed credits from the peer, saturating at the initial grant
    /// (over-replenishment indicates a protocol bug and is clamped).
    #[inline]
    pub fn replenish(&mut self, port: PortId, vl: VirtualLane, bytes: u64) {
        let i = self.idx(port, vl);
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            bytes <= self.initial[i],
            "sim-sanitizer: credit return of {bytes} B on {vl} exceeds the whole grant of {} B",
            self.initial[i]
        );
        self.available[i] = (self.available[i] + bytes).min(self.initial[i]);
    }

    /// Bytes currently in flight (consumed but not yet replenished).
    pub fn in_flight(&self, port: PortId, vl: VirtualLane) -> u64 {
        let i = self.idx(port, vl);
        self.initial[i] - self.available[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::PortId;

    #[test]
    fn consume_and_replenish_conserve() {
        let mut c = CreditLedger::new(2, 10_000);
        let vl = VirtualLane::new(0);
        assert!(c.consume(vl, 4_000));
        assert!(c.consume(vl, 4_000));
        assert_eq!(c.available(vl), 2_000);
        assert_eq!(c.in_flight(vl), 8_000);
        c.replenish(vl, 4_000);
        assert_eq!(c.available(vl), 6_000);
        assert_eq!(c.in_flight(vl), 4_000);
    }

    #[test]
    fn insufficient_credits_refused() {
        let mut c = CreditLedger::new(1, 1_000);
        let vl = VirtualLane::new(0);
        assert!(!c.consume(vl, 2_000));
        assert_eq!(c.available(vl), 1_000, "refused consume must not spend");
        assert!(!c.can_send(vl, 1_001));
        assert!(c.can_send(vl, 1_000));
    }

    #[test]
    fn lanes_are_independent() {
        let mut c = CreditLedger::new(2, 1_000);
        let vl0 = VirtualLane::new(0);
        let vl1 = VirtualLane::new(1);
        assert!(c.consume(vl0, 1_000));
        assert_eq!(c.available(vl0), 0);
        assert_eq!(c.available(vl1), 1_000);
    }

    // The sanitizer turns the silent clamp into a debug_assert, so this
    // test only makes sense without it.
    #[cfg(not(feature = "sim-sanitizer"))]
    #[test]
    fn over_replenish_clamped() {
        let mut c = CreditLedger::new(1, 1_000);
        let vl = VirtualLane::new(0);
        c.replenish(vl, 5_000);
        assert_eq!(c.available(vl), 1_000);
    }

    #[test]
    fn matrix_matches_ledger_semantics() {
        let mut m = CreditMatrix::new(3, 2, 1_000);
        let mut l = CreditLedger::new(2, 1_000);
        let p = PortId::new(2);
        let vl = VirtualLane::new(1);
        assert_eq!(m.consume(p, vl, 600), l.consume(vl, 600));
        assert_eq!(m.consume(p, vl, 600), l.consume(vl, 600));
        assert_eq!(m.available(p, vl), l.available(vl));
        assert_eq!(m.in_flight(p, vl), l.in_flight(vl));
        m.replenish(p, vl, 600);
        l.replenish(vl, 600);
        assert_eq!(m.available(p, vl), l.available(vl));
        // Other ports and lanes are untouched.
        assert_eq!(m.available(PortId::new(0), vl), 1_000);
        assert_eq!(m.available(p, VirtualLane::new(0)), 1_000);
    }

    #[test]
    fn matrix_set_port_copies_ledger_state() {
        let mut m = CreditMatrix::new(2, 2, 9_999);
        let mut l = CreditLedger::new(2, 4_148);
        assert!(l.consume(VirtualLane::new(0), 148));
        m.set_port(PortId::new(1), &l);
        assert_eq!(m.available(PortId::new(1), VirtualLane::new(0)), 4_000);
        assert_eq!(m.in_flight(PortId::new(1), VirtualLane::new(0)), 148);
        assert_eq!(m.available(PortId::new(1), VirtualLane::new(1)), 4_148);
        // The untouched port keeps the constructor grant.
        assert_eq!(m.available(PortId::new(0), VirtualLane::new(0)), 9_999);
    }

    #[test]
    fn unlimited_is_effectively_infinite() {
        let mut c = CreditLedger::unlimited(1);
        let vl = VirtualLane::new(0);
        for _ in 0..1_000 {
            assert!(c.consume(vl, u32::MAX as u64));
        }
    }
}
