//! Per-(ingress port, VL) input buffers.

use std::collections::VecDeque;

use rperf_model::{PacketRef, PortId, VirtualLane};
use rperf_sim::SimTime;

/// One buffered packet with its switch-local metadata.
///
/// The packet itself lives in the fabric's `PacketSlab`; the buffer holds a
/// copyable handle plus everything the arbitration scan needs — egress port
/// (resolved once at admission) and wire size — so per-round head scans
/// never touch the slab.
#[derive(Debug, Clone, Copy)]
pub struct BufEntry {
    /// Handle to the buffered packet.
    pub packet: PacketRef,
    /// The egress port the forwarding table resolved at admission.
    pub egress: PortId,
    /// Wire size (payload + overhead) in bytes.
    pub wire: u64,
    /// When the packet arrived at *this* switch — the FCFS key.
    pub arrival: SimTime,
    /// When the packet clears the ingress pipeline and may be arbitrated.
    pub eligible_at: SimTime,
}

/// A credit-advertised FIFO for one (ingress port, virtual lane) pair.
///
/// Capacity is in wire bytes; occupancy never exceeds the advertisement
/// because the upstream sender spends a credit before transmitting. An
/// over-admission is counted (it indicates a flow-control bug upstream)
/// but still accepted, because IB links are lossless and dropping would
/// corrupt the protocol state machines above.
///
/// # Examples
///
/// ```
/// use rperf_switch::VlBuffer;
///
/// let buf = VlBuffer::new(32 * 1024);
/// assert_eq!(buf.capacity(), 32 * 1024);
/// assert_eq!(buf.free(), 32 * 1024);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct VlBuffer {
    queue: VecDeque<BufEntry>,
    capacity: u64,
    occupied: u64,
    max_occupied: u64,
    violations: u64,
}

impl VlBuffer {
    /// Creates an empty buffer advertising `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        VlBuffer {
            queue: VecDeque::new(),
            capacity,
            occupied: 0,
            max_occupied: 0,
            violations: 0,
        }
    }

    /// Advertised capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// Bytes of remaining space.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.occupied)
    }

    /// Packets currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// High-water mark of occupancy.
    pub fn max_occupied(&self) -> u64 {
        self.max_occupied
    }

    /// Number of admissions that exceeded the advertised capacity.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Admits a packet (upstream spent a credit for it).
    pub fn push(&mut self, entry: BufEntry) {
        if self.occupied + entry.wire > self.capacity {
            self.violations += 1;
        }
        self.occupied += entry.wire;
        self.max_occupied = self.max_occupied.max(self.occupied);
        self.queue.push_back(entry);
    }

    /// The head packet, if any.
    pub fn head(&self) -> Option<&BufEntry> {
        self.queue.front()
    }

    /// Removes and returns the head packet, freeing its bytes.
    pub fn pop(&mut self) -> Option<BufEntry> {
        let entry = self.queue.pop_front()?;
        self.occupied -= entry.wire;
        Some(entry)
    }
}

/// Struct-of-arrays input-buffer bank for a whole switch: one FIFO per
/// (ingress port, virtual lane) slot, with the head-of-queue metadata the
/// arbitration scan reads (egress, eligibility, wire size, arrival) mirrored
/// into flat per-field arrays.
///
/// [`VlBuffer`] keeps each queue's packets together (array-of-structs); an
/// arbitration round touching 100+ heads pays one pointer chase per slot.
/// This layout instead walks four contiguous arrays plus a non-empty bitset,
/// so a round over the whole switch is a handful of cache lines. Slots are
/// port-major (`slot = port·vls + vl`), matching the scan order the
/// scheduling policies were calibrated against.
///
/// Semantics (admission counting, violation accounting, FIFO order) are
/// identical to a `ports × vls` matrix of [`VlBuffer`]s — the AoS-vs-SoA
/// microbench races the two on the same workload.
///
/// # Examples
///
/// ```
/// use rperf_model::{PortId, VirtualLane};
/// use rperf_switch::VlBufferArray;
///
/// let bank = VlBufferArray::new(12, 9, 32 * 1024);
/// assert_eq!(bank.slots(), 12 * 9);
/// assert!(bank.head(PortId::new(3), VirtualLane::new(0)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct VlBufferArray {
    vls: usize,
    capacity: u64,
    /// FIFO bodies, port-major. Only push/pop touch these; scans don't.
    queues: Vec<VecDeque<BufEntry>>,
    /// Head packet's egress port (raw), [`VlBufferArray::EMPTY`] if none.
    head_egress: Vec<u8>,
    /// Head packet's eligibility instant (undefined while slot empty).
    head_eligible: Vec<SimTime>,
    /// Head packet's wire size in bytes (undefined while slot empty).
    head_wire: Vec<u64>,
    /// Head packet's arrival instant — the FCFS key (undefined while empty).
    head_arrival: Vec<SimTime>,
    occupied: Vec<u64>,
    max_occupied: Vec<u64>,
    violations: u64,
    /// Bit `slot % 64` of word `slot / 64` set ⇔ the slot's queue is
    /// non-empty. Scans iterate set bits in ascending slot order.
    nonempty: Vec<u64>,
}

impl VlBufferArray {
    /// Sentinel in the `head_egress` array marking an empty slot.
    pub const EMPTY: u8 = u8::MAX;

    /// Creates a bank of `ports × vls` empty buffers, each advertising
    /// `capacity` bytes.
    pub fn new(ports: u8, vls: u8, capacity: u64) -> Self {
        let slots = ports as usize * vls as usize;
        VlBufferArray {
            vls: vls as usize,
            capacity,
            queues: vec![VecDeque::new(); slots],
            head_egress: vec![Self::EMPTY; slots],
            head_eligible: vec![SimTime::ZERO; slots],
            head_wire: vec![0; slots],
            head_arrival: vec![SimTime::ZERO; slots],
            occupied: vec![0; slots],
            max_occupied: vec![0; slots],
            violations: 0,
            nonempty: vec![0; slots.div_ceil(64)],
        }
    }

    /// Number of (port, VL) slots.
    pub fn slots(&self) -> usize {
        self.queues.len()
    }

    /// Virtual lanes per port (the slot-index stride).
    #[inline]
    pub fn vls(&self) -> usize {
        self.vls
    }

    /// Flat slot index of a (port, VL) pair.
    #[inline]
    pub fn slot_of(&self, port: PortId, vl: VirtualLane) -> usize {
        port.index() * self.vls + vl.index()
    }

    /// The non-empty bitset, one bit per slot in ascending slot order.
    #[inline]
    pub fn nonempty_words(&self) -> &[u64] {
        &self.nonempty
    }

    /// Head packet's egress port (raw `u8`) at `slot`, or
    /// [`VlBufferArray::EMPTY`].
    #[inline]
    pub fn head_egress_raw(&self, slot: usize) -> u8 {
        self.head_egress[slot]
    }

    /// Head packet's eligibility instant at `slot` (meaningless if empty).
    #[inline]
    pub fn head_eligible(&self, slot: usize) -> SimTime {
        self.head_eligible[slot]
    }

    /// Head packet's wire size at `slot` (meaningless if empty).
    #[inline]
    pub fn head_wire(&self, slot: usize) -> u64 {
        self.head_wire[slot]
    }

    /// Head packet's arrival instant at `slot` (meaningless if empty).
    #[inline]
    pub fn head_arrival(&self, slot: usize) -> SimTime {
        self.head_arrival[slot]
    }

    /// Admits a packet on (`port`, `vl`); the upstream spent a credit.
    /// Over-capacity admissions are counted but accepted, as in
    /// [`VlBuffer::push`].
    pub fn push(&mut self, port: PortId, vl: VirtualLane, entry: BufEntry) {
        let slot = self.slot_of(port, vl);
        if self.occupied[slot] + entry.wire > self.capacity {
            self.violations += 1;
        }
        self.occupied[slot] += entry.wire;
        self.max_occupied[slot] = self.max_occupied[slot].max(self.occupied[slot]);
        if self.queues[slot].is_empty() {
            self.set_head(slot, &entry);
            self.nonempty[slot / 64] |= 1u64 << (slot % 64);
        }
        self.queues[slot].push_back(entry);
    }

    /// Removes and returns the head packet of (`port`, `vl`), freeing its
    /// bytes and refreshing the slot's head metadata.
    pub fn pop(&mut self, port: PortId, vl: VirtualLane) -> Option<BufEntry> {
        let slot = self.slot_of(port, vl);
        let entry = self.queues[slot].pop_front()?;
        self.occupied[slot] -= entry.wire;
        match self.queues[slot].front().copied() {
            Some(next) => self.set_head(slot, &next),
            None => {
                self.head_egress[slot] = Self::EMPTY;
                self.nonempty[slot / 64] &= !(1u64 << (slot % 64));
            }
        }
        Some(entry)
    }

    /// The head packet of (`port`, `vl`), if any.
    pub fn head(&self, port: PortId, vl: VirtualLane) -> Option<BufEntry> {
        let slot = self.slot_of(port, vl);
        self.queues[slot].front().copied()
    }

    /// Bytes currently buffered on (`port`, `vl`).
    pub fn occupancy(&self, port: PortId, vl: VirtualLane) -> u64 {
        self.occupied[self.slot_of(port, vl)]
    }

    /// Total bytes buffered across all slots.
    pub fn total_occupied(&self) -> u64 {
        self.occupied.iter().sum()
    }

    /// Total admissions that exceeded an advertised capacity.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    #[inline]
    fn set_head(&mut self, slot: usize, entry: &BufEntry) {
        self.head_egress[slot] = entry.egress.raw();
        self.head_eligible[slot] = entry.eligible_at;
        self.head_wire[slot] = entry.wire;
        self.head_arrival[slot] = entry.arrival;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::arena::PacketSlab;
    use rperf_model::ids::PacketId;
    use rperf_model::{
        FlowId, Lid, MsgId, Packet, PacketKind, QpNum, ServiceLevel, Transport, Verb,
    };

    fn entry(slab: &mut PacketSlab, bytes: u64, t_ns: u64) -> BufEntry {
        let packet = slab.alloc(Packet {
            id: PacketId::new(0),
            flow: FlowId::new(0),
            msg: MsgId::new(0),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(0),
            sl: ServiceLevel::new(0),
            kind: PacketKind::Data {
                verb: Verb::Send,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
            payload: bytes - 52,
            overhead: 52,
            injected_at: SimTime::ZERO,
        });
        BufEntry {
            packet,
            egress: PortId::new(0),
            wire: bytes,
            arrival: SimTime::from_ns(t_ns),
            eligible_at: SimTime::from_ns(t_ns + 200),
        }
    }

    #[test]
    fn occupancy_tracks_push_pop() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(10_000);
        b.push(entry(&mut slab, 4148, 0));
        b.push(entry(&mut slab, 4148, 1));
        assert_eq!(b.occupied(), 8296);
        assert_eq!(b.free(), 1704);
        assert_eq!(b.len(), 2);
        b.pop();
        assert_eq!(b.occupied(), 4148);
        assert_eq!(b.max_occupied(), 8296);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(100_000);
        for i in 0..5 {
            b.push(entry(&mut slab, 100, i));
        }
        for i in 0..5 {
            assert_eq!(b.pop().unwrap().arrival, SimTime::from_ns(i));
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn violation_counted_but_admitted() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(4_000);
        b.push(entry(&mut slab, 4148, 0));
        assert_eq!(b.violations(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn exact_fit_is_not_a_violation() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(4148);
        b.push(entry(&mut slab, 4148, 0));
        assert_eq!(b.violations(), 0);
        assert_eq!(b.free(), 0);
    }

    #[test]
    fn head_peeks_without_removal() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(100_000);
        b.push(entry(&mut slab, 100, 7));
        assert_eq!(b.head().unwrap().arrival, SimTime::from_ns(7));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn soa_bank_tracks_heads_and_bitset() {
        let mut slab = PacketSlab::new();
        let mut bank = VlBufferArray::new(4, 3, 10_000);
        let (p, v) = (PortId::new(2), VirtualLane::new(1));
        let slot = bank.slot_of(p, v);
        assert_eq!(slot, 2 * 3 + 1);
        assert_eq!(bank.head_egress_raw(slot), VlBufferArray::EMPTY);

        let mut e1 = entry(&mut slab, 4148, 5);
        e1.egress = PortId::new(3);
        let mut e2 = entry(&mut slab, 148, 9);
        e2.egress = PortId::new(1);
        bank.push(p, v, e1);
        bank.push(p, v, e2);

        assert_eq!(bank.nonempty_words()[0], 1u64 << slot);
        assert_eq!(bank.head_egress_raw(slot), 3);
        assert_eq!(bank.head_wire(slot), 4148);
        assert_eq!(bank.head_arrival(slot), SimTime::from_ns(5));
        assert_eq!(bank.head_eligible(slot), SimTime::from_ns(205));
        assert_eq!(bank.occupancy(p, v), 4148 + 148);

        // Popping refreshes the head mirror to the next packet…
        let popped = bank.pop(p, v).unwrap();
        assert_eq!(popped.wire, 4148);
        assert_eq!(bank.head_egress_raw(slot), 1);
        assert_eq!(bank.head_wire(slot), 148);
        // …and emptying the slot clears the bitset and sentinel.
        bank.pop(p, v).unwrap();
        assert_eq!(bank.head_egress_raw(slot), VlBufferArray::EMPTY);
        assert_eq!(bank.nonempty_words()[0], 0);
        assert!(bank.pop(p, v).is_none());
        assert_eq!(bank.total_occupied(), 0);
    }

    #[test]
    fn soa_bank_matches_aos_matrix() {
        // Differential: the SoA bank must agree with a ports × vls matrix
        // of VlBuffers on occupancy, violations, heads and pop order under
        // a deterministic mixed workload.
        let (ports, vls) = (4u8, 3u8);
        let mut slab = PacketSlab::new();
        let mut bank = VlBufferArray::new(ports, vls, 9_000);
        let mut matrix: Vec<Vec<VlBuffer>> = (0..ports)
            .map(|_| (0..vls).map(|_| VlBuffer::new(9_000)).collect())
            .collect();
        let mut x = 11u64;
        for i in 0..200u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = ((x >> 32) % u64::from(ports)) as u8;
            let v = ((x >> 40) % u64::from(vls)) as u8;
            let (port, vl) = (PortId::new(p), VirtualLane::new(v));
            if x.is_multiple_of(3) {
                let a = bank.pop(port, vl).map(|e| (e.wire, e.arrival));
                let b = matrix[port.index()][vl.index()]
                    .pop()
                    .map(|e| (e.wire, e.arrival));
                assert_eq!(a, b, "pop mismatch at step {i}");
            } else {
                let mut e = entry(&mut slab, 100 + (x % 5_000), i);
                e.egress = PortId::new(((x >> 48) % u64::from(ports)) as u8);
                bank.push(port, vl, e);
                matrix[port.index()][vl.index()].push(e);
            }
            let a = bank.head(port, vl).map(|e| (e.wire, e.arrival, e.egress));
            let b = matrix[port.index()][vl.index()]
                .head()
                .map(|e| (e.wire, e.arrival, e.egress));
            assert_eq!(a, b, "head mismatch at step {i}");
            assert_eq!(
                bank.occupancy(port, vl),
                matrix[port.index()][vl.index()].occupied()
            );
        }
        let aos_violations: u64 = matrix.iter().flatten().map(|b| b.violations()).sum();
        assert_eq!(bank.violations(), aos_violations);
        let aos_total: u64 = matrix.iter().flatten().map(|b| b.occupied()).sum();
        assert_eq!(bank.total_occupied(), aos_total);
    }
}
