//! Per-(ingress port, VL) input buffers.

use std::collections::VecDeque;

use rperf_model::{PacketRef, PortId};
use rperf_sim::SimTime;

/// One buffered packet with its switch-local metadata.
///
/// The packet itself lives in the fabric's `PacketSlab`; the buffer holds a
/// copyable handle plus everything the arbitration scan needs — egress port
/// (resolved once at admission) and wire size — so per-round head scans
/// never touch the slab.
#[derive(Debug, Clone, Copy)]
pub struct BufEntry {
    /// Handle to the buffered packet.
    pub packet: PacketRef,
    /// The egress port the forwarding table resolved at admission.
    pub egress: PortId,
    /// Wire size (payload + overhead) in bytes.
    pub wire: u64,
    /// When the packet arrived at *this* switch — the FCFS key.
    pub arrival: SimTime,
    /// When the packet clears the ingress pipeline and may be arbitrated.
    pub eligible_at: SimTime,
}

/// A credit-advertised FIFO for one (ingress port, virtual lane) pair.
///
/// Capacity is in wire bytes; occupancy never exceeds the advertisement
/// because the upstream sender spends a credit before transmitting. An
/// over-admission is counted (it indicates a flow-control bug upstream)
/// but still accepted, because IB links are lossless and dropping would
/// corrupt the protocol state machines above.
///
/// # Examples
///
/// ```
/// use rperf_switch::VlBuffer;
///
/// let buf = VlBuffer::new(32 * 1024);
/// assert_eq!(buf.capacity(), 32 * 1024);
/// assert_eq!(buf.free(), 32 * 1024);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct VlBuffer {
    queue: VecDeque<BufEntry>,
    capacity: u64,
    occupied: u64,
    max_occupied: u64,
    violations: u64,
}

impl VlBuffer {
    /// Creates an empty buffer advertising `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        VlBuffer {
            queue: VecDeque::new(),
            capacity,
            occupied: 0,
            max_occupied: 0,
            violations: 0,
        }
    }

    /// Advertised capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// Bytes of remaining space.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.occupied)
    }

    /// Packets currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// High-water mark of occupancy.
    pub fn max_occupied(&self) -> u64 {
        self.max_occupied
    }

    /// Number of admissions that exceeded the advertised capacity.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Admits a packet (upstream spent a credit for it).
    pub fn push(&mut self, entry: BufEntry) {
        if self.occupied + entry.wire > self.capacity {
            self.violations += 1;
        }
        self.occupied += entry.wire;
        self.max_occupied = self.max_occupied.max(self.occupied);
        self.queue.push_back(entry);
    }

    /// The head packet, if any.
    pub fn head(&self) -> Option<&BufEntry> {
        self.queue.front()
    }

    /// Removes and returns the head packet, freeing its bytes.
    pub fn pop(&mut self) -> Option<BufEntry> {
        let entry = self.queue.pop_front()?;
        self.occupied -= entry.wire;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::arena::PacketSlab;
    use rperf_model::ids::PacketId;
    use rperf_model::{
        FlowId, Lid, MsgId, Packet, PacketKind, QpNum, ServiceLevel, Transport, Verb,
    };

    fn entry(slab: &mut PacketSlab, bytes: u64, t_ns: u64) -> BufEntry {
        let packet = slab.alloc(Packet {
            id: PacketId::new(0),
            flow: FlowId::new(0),
            msg: MsgId::new(0),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(0),
            sl: ServiceLevel::new(0),
            kind: PacketKind::Data {
                verb: Verb::Send,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
            payload: bytes - 52,
            overhead: 52,
            injected_at: SimTime::ZERO,
        });
        BufEntry {
            packet,
            egress: PortId::new(0),
            wire: bytes,
            arrival: SimTime::from_ns(t_ns),
            eligible_at: SimTime::from_ns(t_ns + 200),
        }
    }

    #[test]
    fn occupancy_tracks_push_pop() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(10_000);
        b.push(entry(&mut slab, 4148, 0));
        b.push(entry(&mut slab, 4148, 1));
        assert_eq!(b.occupied(), 8296);
        assert_eq!(b.free(), 1704);
        assert_eq!(b.len(), 2);
        b.pop();
        assert_eq!(b.occupied(), 4148);
        assert_eq!(b.max_occupied(), 8296);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(100_000);
        for i in 0..5 {
            b.push(entry(&mut slab, 100, i));
        }
        for i in 0..5 {
            assert_eq!(b.pop().unwrap().arrival, SimTime::from_ns(i));
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn violation_counted_but_admitted() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(4_000);
        b.push(entry(&mut slab, 4148, 0));
        assert_eq!(b.violations(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn exact_fit_is_not_a_violation() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(4148);
        b.push(entry(&mut slab, 4148, 0));
        assert_eq!(b.violations(), 0);
        assert_eq!(b.free(), 0);
    }

    #[test]
    fn head_peeks_without_removal() {
        let mut slab = PacketSlab::new();
        let mut b = VlBuffer::new(100_000);
        b.push(entry(&mut slab, 100, 7));
        assert_eq!(b.head().unwrap().arrival, SimTime::from_ns(7));
        assert_eq!(b.len(), 1);
    }
}
