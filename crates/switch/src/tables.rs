//! Linear forwarding tables.

use rperf_model::{Lid, PortId};

/// A LID → egress-port forwarding table, programmed by the subnet manager
/// at fabric bring-up.
///
/// Lookups are on the per-packet hot path, so the table is a dense `Vec`
/// indexed by destination LID — `route` is a bounds check plus a load,
/// with no tree walk or hashing. LIDs are assigned contiguously from 1
/// by the subnet planner, so the slab wastes at most one slot.
///
/// # Examples
///
/// ```
/// use rperf_model::{Lid, PortId};
/// use rperf_switch::ForwardingTable;
///
/// let mut t = ForwardingTable::new();
/// t.set(Lid::new(5), PortId::new(2));
/// assert_eq!(t.route(Lid::new(5)), Some(PortId::new(2)));
/// assert_eq!(t.route(Lid::new(6)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForwardingTable {
    /// `slots[lid]` is the programmed egress port for that LID.
    slots: Vec<Option<PortId>>,
    /// Number of `Some` entries in `slots`.
    programmed: usize,
}

impl ForwardingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs (or reprograms) the egress port for a destination LID.
    pub fn set(&mut self, lid: Lid, port: PortId) {
        let idx = lid.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_none() {
            self.programmed += 1;
        }
        self.slots[idx] = Some(port);
    }

    /// Looks up the egress port for a destination LID.
    #[inline]
    pub fn route(&self, lid: Lid) -> Option<PortId> {
        self.slots.get(lid.raw() as usize).copied().flatten()
    }

    /// Number of programmed destinations.
    pub fn len(&self) -> usize {
        self.programmed
    }

    /// `true` if nothing is programmed.
    pub fn is_empty(&self) -> bool {
        self.programmed == 0
    }

    /// Iterates the programmed entries in ascending LID order.
    pub fn entries(&self) -> impl Iterator<Item = (Lid, PortId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(lid, port)| port.map(|p| (Lid::new(lid as u16), p)))
    }
}

impl FromIterator<(Lid, PortId)> for ForwardingTable {
    fn from_iter<I: IntoIterator<Item = (Lid, PortId)>>(iter: I) -> Self {
        let mut t = ForwardingTable::new();
        for (lid, port) in iter {
            t.set(lid, port);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites() {
        let mut t = ForwardingTable::new();
        t.set(Lid::new(1), PortId::new(0));
        t.set(Lid::new(1), PortId::new(3));
        assert_eq!(t.route(Lid::new(1)), Some(PortId::new(3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let t: ForwardingTable = (0..4u16)
            .map(|i| (Lid::new(i), PortId::new(i as u8)))
            .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.route(Lid::new(2)), Some(PortId::new(2)));
        assert!(!t.is_empty());
    }

    #[test]
    fn entries_iterate_in_lid_order_with_holes_skipped() {
        let mut t = ForwardingTable::new();
        t.set(Lid::new(9), PortId::new(1));
        t.set(Lid::new(2), PortId::new(7));
        let seen: Vec<(u16, u8)> = t.entries().map(|(l, p)| (l.raw(), p.raw())).collect();
        assert_eq!(seen, vec![(2, 7), (9, 1)]);
        assert_eq!(t.len(), 2);
        // Lookups far past the slab end are misses, not panics.
        assert_eq!(t.route(Lid::new(1000)), None);
    }
}
