//! Linear forwarding tables.

use std::collections::BTreeMap;

use rperf_model::{Lid, PortId};

/// A LID → egress-port forwarding table, programmed by the subnet manager
/// at fabric bring-up.
///
/// # Examples
///
/// ```
/// use rperf_model::{Lid, PortId};
/// use rperf_switch::ForwardingTable;
///
/// let mut t = ForwardingTable::new();
/// t.set(Lid::new(5), PortId::new(2));
/// assert_eq!(t.route(Lid::new(5)), Some(PortId::new(2)));
/// assert_eq!(t.route(Lid::new(6)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForwardingTable {
    entries: BTreeMap<u16, PortId>,
}

impl ForwardingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs (or reprograms) the egress port for a destination LID.
    pub fn set(&mut self, lid: Lid, port: PortId) {
        self.entries.insert(lid.raw(), port);
    }

    /// Looks up the egress port for a destination LID.
    pub fn route(&self, lid: Lid) -> Option<PortId> {
        self.entries.get(&lid.raw()).copied()
    }

    /// Number of programmed destinations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is programmed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(Lid, PortId)> for ForwardingTable {
    fn from_iter<I: IntoIterator<Item = (Lid, PortId)>>(iter: I) -> Self {
        let mut t = ForwardingTable::new();
        for (lid, port) in iter {
            t.set(lid, port);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites() {
        let mut t = ForwardingTable::new();
        t.set(Lid::new(1), PortId::new(0));
        t.set(Lid::new(1), PortId::new(3));
        assert_eq!(t.route(Lid::new(1)), Some(PortId::new(3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let t: ForwardingTable = (0..4u16)
            .map(|i| (Lid::new(i), PortId::new(i as u8)))
            .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.route(Lid::new(2)), Some(PortId::new(2)));
        assert!(!t.is_empty());
    }
}
