//! IB-spec virtual-lane arbitration.

use std::sync::Arc;

use rperf_model::config::{VlArbConfig, VlArbEntry};
use rperf_model::VirtualLane;

/// Bytes of high-priority allowance per unit of `limit_high` (the IB spec
/// expresses the limit in 4 KB blocks).
const LIMIT_HIGH_UNIT: u64 = 4096;

/// Bytes per unit of entry weight (IB spec: weights are in 64-byte units).
const WEIGHT_UNIT: u64 = 64;

/// The two-level VL arbiter of one egress port.
///
/// High-priority table entries are served ahead of low-priority ones, with
/// weighted round-robin *within* each table, subject to the *Limit of High
/// Priority*: after `limit_high × 4096` bytes of consecutive high-priority
/// data, one low-priority opportunity must be offered (if low-priority
/// traffic is waiting). This is the starvation-avoidance mechanism whose
/// latency side effect the paper calls out in Section VIII-C.
///
/// # Examples
///
/// ```
/// use rperf_model::config::VlArbConfig;
/// use rperf_model::VirtualLane;
/// use rperf_switch::VlArbiter;
///
/// let mut arb = VlArbiter::new(VlArbConfig::dedicated_high_vl1());
/// let vl0 = VirtualLane::new(0);
/// let vl1 = VirtualLane::new(1);
/// // VL1 is high priority: chosen whenever it has traffic and budget.
/// assert_eq!(arb.choose(&[vl0, vl1]), Some(vl1));
/// ```
#[derive(Debug, Clone)]
pub struct VlArbiter {
    cfg: Arc<VlArbConfig>,
    /// Remaining consecutive high-priority bytes before a forced low turn.
    high_budget: u64,
    /// Set when the budget ran out and a low-priority turn is owed.
    must_serve_low: bool,
    /// Weighted-RR state for the high table.
    high_cursor: TableCursor,
    /// Weighted-RR state for the low table.
    low_cursor: TableCursor,
}

#[derive(Debug, Clone)]
struct TableCursor {
    index: usize,
    remaining: u64,
}

impl TableCursor {
    fn new() -> Self {
        TableCursor {
            index: 0,
            remaining: 0,
        }
    }

    /// Picks the next entry whose VL is among `candidates`, honouring the
    /// weighted rotation: the current entry keeps serving while it has
    /// budget and traffic; otherwise the cursor rotates to the next entry
    /// with a candidate and resets that entry's budget.
    fn pick(&mut self, table: &[VlArbEntry], candidates: &[VirtualLane]) -> Option<VirtualLane> {
        if table.is_empty() {
            return None;
        }
        if self.index >= table.len() {
            self.index = 0;
            self.remaining = 0;
        }
        let current = &table[self.index];
        if self.remaining > 0 && candidates.contains(&current.vl) {
            return Some(current.vl);
        }
        for step in 1..=table.len() {
            let i = (self.index + step) % table.len();
            let entry = &table[i];
            if candidates.contains(&entry.vl) {
                self.index = i;
                self.remaining = entry_budget(entry);
                return Some(entry.vl);
            }
        }
        None
    }

    /// Accounts `bytes` against the current entry's weight, rotating the
    /// cursor when the entry's allowance is spent.
    fn account(&mut self, table: &[VlArbEntry], vl: VirtualLane, bytes: u64) {
        if table.is_empty() {
            return;
        }
        if self.index >= table.len() {
            self.index = 0;
        }
        if table[self.index].vl == vl {
            self.remaining = self.remaining.saturating_sub(bytes);
            if self.remaining == 0 {
                self.index = (self.index + 1) % table.len();
                self.remaining = entry_budget(&table[self.index]);
            }
        }
    }
}

fn entry_budget(e: &VlArbEntry) -> u64 {
    u64::from(e.weight.max(1)) * WEIGHT_UNIT
}

impl VlArbiter {
    /// Creates an arbiter from the port's arbitration tables. Accepts the
    /// tables by value or pre-shared in an [`Arc`] — a switch hands every
    /// port the same allocation.
    pub fn new(cfg: impl Into<Arc<VlArbConfig>>) -> Self {
        let cfg = cfg.into();
        let high_budget = Self::budget_of(&cfg);
        VlArbiter {
            cfg,
            high_budget,
            must_serve_low: false,
            high_cursor: TableCursor::new(),
            low_cursor: TableCursor::new(),
        }
    }

    fn budget_of(cfg: &VlArbConfig) -> u64 {
        if cfg.limit_high == u8::MAX {
            u64::MAX
        } else {
            // limit 0 still permits a single packet (tracked by forcing a
            // low turn after every high packet once the budget is spent).
            u64::from(cfg.limit_high).max(1) * LIMIT_HIGH_UNIT
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VlArbConfig {
        &self.cfg
    }

    /// Chooses the VL to serve next among `candidates` (VLs that have an
    /// eligible head packet *and* downstream credits). Returns `None` if no
    /// candidate appears in either table.
    pub fn choose(&mut self, candidates: &[VirtualLane]) -> Option<VirtualLane> {
        let high_has = candidates.iter().any(|vl| self.cfg.is_high(*vl));
        let low_has = candidates
            .iter()
            .any(|vl| self.cfg.low.iter().any(|e| e.vl == *vl));

        if high_has && !(self.must_serve_low && low_has) {
            return self.high_cursor.pick(&self.cfg.high, candidates);
        }
        if low_has {
            return self.low_cursor.pick(&self.cfg.low, candidates);
        }
        if high_has {
            // A low turn was owed but no low traffic exists: stay work-
            // conserving and serve high anyway.
            return self.high_cursor.pick(&self.cfg.high, candidates);
        }
        None
    }

    /// Records that `bytes` were transmitted on `vl`, updating priority
    /// budgets and weighted-RR state.
    pub fn account(&mut self, vl: VirtualLane, bytes: u64) {
        if self.cfg.is_high(vl) {
            self.high_cursor.account(&self.cfg.high, vl, bytes);
            if self.cfg.limit_high != u8::MAX {
                self.high_budget = self.high_budget.saturating_sub(bytes);
                if self.high_budget == 0 {
                    self.must_serve_low = true;
                }
            }
        } else {
            self.low_cursor.account(&self.cfg.low, vl, bytes);
            self.must_serve_low = false;
            self.high_budget = Self::budget_of(&self.cfg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vl(n: u8) -> VirtualLane {
        VirtualLane::new(n)
    }

    #[test]
    fn default_config_serves_vl0() {
        let mut arb = VlArbiter::new(VlArbConfig::default());
        assert_eq!(arb.choose(&[vl(0)]), Some(vl(0)));
        assert_eq!(arb.choose(&[]), None);
    }

    #[test]
    fn unknown_vl_is_never_chosen() {
        let mut arb = VlArbiter::new(VlArbConfig::default());
        // VL5 appears in no table.
        assert_eq!(arb.choose(&[vl(5)]), None);
    }

    #[test]
    fn high_priority_wins_when_budget_available() {
        let mut arb = VlArbiter::new(VlArbConfig::dedicated_high_vl1());
        assert_eq!(arb.choose(&[vl(0), vl(1)]), Some(vl(1)));
    }

    #[test]
    fn limit_high_forces_low_turn() {
        let mut arb = VlArbiter::new(VlArbConfig::dedicated_high_vl1()); // 4 KB limit
                                                                         // Send 16 × 256 B high packets (4096 B): budget exhausts.
        for _ in 0..16 {
            assert_eq!(arb.choose(&[vl(0), vl(1)]), Some(vl(1)));
            arb.account(vl(1), 256);
        }
        // Now one low-priority turn is owed.
        assert_eq!(arb.choose(&[vl(0), vl(1)]), Some(vl(0)));
        arb.account(vl(0), 4096);
        // Budget replenished: high again.
        assert_eq!(arb.choose(&[vl(0), vl(1)]), Some(vl(1)));
    }

    #[test]
    fn owed_low_turn_skipped_if_no_low_traffic() {
        let mut arb = VlArbiter::new(VlArbConfig::dedicated_high_vl1());
        arb.account(vl(1), 4096); // exhaust the budget
                                  // Only high traffic present: stay work-conserving.
        assert_eq!(arb.choose(&[vl(1)]), Some(vl(1)));
    }

    #[test]
    fn unlimited_high_never_yields() {
        let mut cfg = VlArbConfig::dedicated_high_vl1();
        cfg.limit_high = u8::MAX;
        let mut arb = VlArbiter::new(cfg);
        for _ in 0..1000 {
            assert_eq!(arb.choose(&[vl(0), vl(1)]), Some(vl(1)));
            arb.account(vl(1), 4096);
        }
    }

    #[test]
    fn low_only_traffic_served_continuously() {
        let mut arb = VlArbiter::new(VlArbConfig::dedicated_high_vl1());
        for _ in 0..100 {
            assert_eq!(arb.choose(&[vl(0)]), Some(vl(0)));
            arb.account(vl(0), 4096);
        }
    }

    #[test]
    fn weighted_rr_between_two_low_vls() {
        let cfg = VlArbConfig {
            high: vec![],
            low: vec![
                VlArbEntry {
                    vl: vl(0),
                    weight: 1, // 64 bytes per turn
                },
                VlArbEntry {
                    vl: vl(1),
                    weight: 1,
                },
            ],
            limit_high: 0,
        };
        let mut arb = VlArbiter::new(cfg);
        let mut picks = Vec::new();
        for _ in 0..8 {
            let chosen = arb.choose(&[vl(0), vl(1)]).unwrap();
            picks.push(chosen.raw());
            arb.account(chosen, 64);
        }
        let zeros = picks.iter().filter(|&&p| p == 0).count();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert_eq!(zeros, 4, "picks {picks:?}");
        assert_eq!(ones, 4, "picks {picks:?}");
    }
}
