//! The switch device: ports, buffers, arbiters and credit plumbing.

use std::sync::Arc;

use rperf_model::arena::{PacketRef, PacketSlab};
use rperf_model::config::SwitchConfig;
use rperf_model::{Lid, LinkRate, PortId, VirtualLane};
use rperf_sim::{SimDuration, SimRng, SimTime};

use crate::arbiter::PacketScheduler;
use crate::buffer::{BufEntry, VlBufferArray};
use crate::credits::{CreditLedger, CreditMatrix};
use crate::tables::ForwardingTable;
use crate::vlarb::VlArbiter;

/// An externally visible effect produced by the switch state machine.
///
/// The fabric layer turns these into scheduled events: packet deliveries to
/// the downstream peer, credit returns to the upstream peer, and wake-ups
/// for the switch itself. Packets travel as [`PacketRef`] handles into the
/// fabric-owned `PacketSlab`; the switch never copies packet bodies.
#[derive(Debug, Clone, Copy)]
pub enum SwitchAction {
    /// Begin transmitting `packet` on `egress`: the first bit leaves
    /// `start_after` from now (arbitration overhead) and the last bit
    /// `start_after + serialize` from now.
    Transmit {
        /// Egress port.
        egress: PortId,
        /// Handle to the packet being forwarded.
        packet: PacketRef,
        /// Arbitration/scan delay before the first bit.
        start_after: SimDuration,
        /// Wire serialization time of the whole packet.
        serialize: SimDuration,
    },
    /// Return `bytes` of VL credits to the device upstream of `ingress`
    /// (buffer space was freed by a dequeue).
    ReturnCredit {
        /// The ingress port whose buffer freed space.
        ingress: PortId,
        /// The virtual lane.
        vl: VirtualLane,
        /// Freed bytes.
        bytes: u64,
    },
    /// Ask to be woken (via [`Switch::egress_wake`]) for `egress` at `at` —
    /// a buffered packet becomes eligible or the port frees up then.
    Wake {
        /// The egress port to re-arbitrate.
        egress: PortId,
        /// The wake-up instant.
        at: SimTime,
    },
}

/// Aggregate switch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Data + control packets forwarded.
    pub forwarded_packets: u64,
    /// Wire bytes forwarded.
    pub forwarded_bytes: u64,
    /// Dispatch attempts that found candidates blocked only by missing
    /// downstream credits.
    pub credit_stalls: u64,
    /// Admissions that exceeded an advertised input buffer (protocol
    /// violations by the upstream device).
    pub buffer_violations: u64,
}

/// An input-buffered, credit-flow-controlled IB switch.
///
/// See the crate docs for the architecture. The switch is driven by three
/// entry points — [`Switch::packet_arrival`], [`Switch::egress_wake`] and
/// [`Switch::credit_from_downstream`] — each appending the actions the
/// fabric must schedule to a caller-owned buffer. Only
/// [`Switch::packet_arrival`] reads the packet slab: the route, wire size
/// and VL are resolved once at admission and cached in the buffer entry, so
/// arbitration rounds are handle-only scans over the struct-of-arrays
/// head-metadata bank ([`VlBufferArray`]).
#[derive(Debug)]
pub struct Switch {
    cfg: Arc<SwitchConfig>,
    data_rate: LinkRate,
    /// Input buffers: struct-of-arrays bank, slots port-major.
    buffers: VlBufferArray,
    /// Credits held toward the peer downstream of each egress port,
    /// flattened `egress × vl`.
    down_credits: CreditMatrix,
    vlarbs: Vec<VlArbiter>,
    scheds: Vec<PacketScheduler>,
    busy_until: Vec<SimTime>,
    fwd: ForwardingTable,
    rng: SimRng,
    stats: SwitchStats,
    /// Candidate VLs of the current arbitration round, in first-appearance
    /// (slot) order. Scratch reused across rounds; cleared lazily at the
    /// start of the next round so every exit path stays cheap.
    cand_vls: Vec<VirtualLane>,
    /// Per-VL candidate `(ingress, arrival)` lists, indexed by VL. Only the
    /// lists named in `cand_vls` are populated.
    cand_lists: Vec<Vec<(PortId, SimTime)>>,
}

impl Switch {
    /// Builds a switch from its configuration and the attached link's data
    /// rate. Downstream credit ledgers default to one input-buffer grant
    /// per VL (symmetric switches); override per port with
    /// [`Switch::set_downstream_credits`] for host-facing ports.
    ///
    /// The configuration is taken as (or promoted to) an [`Arc`], so a
    /// fabric instantiating many identical switches shares one allocation.
    pub fn new(cfg: impl Into<Arc<SwitchConfig>>, data_rate: LinkRate, rng: SimRng) -> Self {
        let cfg = cfg.into();
        let ports = cfg.ports as usize;
        let vls = cfg.vls;
        let buffers = VlBufferArray::new(cfg.ports, vls, cfg.input_buffer_bytes);
        let down_credits = CreditMatrix::new(cfg.ports, vls, cfg.input_buffer_bytes);
        // One shared arbitration table for all ports instead of a deep
        // clone per port.
        let vlarb_cfg = Arc::new(cfg.vlarb.clone());
        let vlarbs = (0..ports)
            .map(|_| VlArbiter::new(vlarb_cfg.clone()))
            .collect();
        let scheds = (0..ports)
            .map(|_| PacketScheduler::new(cfg.policy, cfg.ports))
            .collect();
        Switch {
            data_rate,
            buffers,
            down_credits,
            vlarbs,
            scheds,
            busy_until: vec![SimTime::ZERO; ports],
            fwd: ForwardingTable::new(),
            rng,
            stats: SwitchStats::default(),
            cand_vls: Vec::with_capacity(vls as usize),
            cand_lists: (0..vls).map(|_| Vec::with_capacity(ports)).collect(),
            cfg,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> u8 {
        self.cfg.ports
    }

    /// The switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Programs the forwarding table: traffic for `lid` leaves via `port`.
    pub fn set_route(&mut self, lid: Lid, port: PortId) {
        self.fwd.set(lid, port);
    }

    /// The programmed forwarding table (read-only; debug dumps).
    pub fn forwarding(&self) -> &ForwardingTable {
        &self.fwd
    }

    /// Replaces the credit ledger toward the peer on `port` (call when the
    /// peer's advertisement differs from switch-buffer symmetry, e.g. a
    /// host RNIC).
    pub fn set_downstream_credits(&mut self, port: PortId, ledger: CreditLedger) {
        self.down_credits.set_port(port, &ledger);
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SwitchStats {
        let mut s = self.stats;
        s.buffer_violations = self.buffers.violations();
        s
    }

    /// Bytes buffered on one (ingress, VL) pair.
    pub fn occupancy(&self, ingress: PortId, vl: VirtualLane) -> u64 {
        self.buffers.occupancy(ingress, vl)
    }

    /// Total bytes buffered switch-wide.
    pub fn total_buffered(&self) -> u64 {
        self.buffers.total_occupied()
    }

    /// `true` if the egress port is mid-transmission at `now`.
    pub fn egress_busy(&self, egress: PortId, now: SimTime) -> bool {
        self.busy_until[egress.index()] > now
    }

    /// A packet's first bit has arrived on `ingress` at `now`.
    ///
    /// The packet is admitted to its VL's input buffer (the upstream sender
    /// spent a credit for it) and becomes eligible for arbitration after
    /// the ingress pipeline latency plus per-packet jitter (cut-through:
    /// eligibility does not wait for the last bit; at equal port rates the
    /// egress can never underrun).
    ///
    /// Resulting actions are appended to `out` (an out-parameter so the
    /// fabric's dispatch loop reuses one buffer instead of allocating a
    /// `Vec` per event).
    ///
    /// # Panics
    ///
    /// Panics if the destination LID has no forwarding entry (a fabric
    /// wiring bug).
    pub fn packet_arrival(
        &mut self,
        now: SimTime,
        ingress: PortId,
        packet: PacketRef,
        slab: &PacketSlab,
        out: &mut Vec<SwitchAction>,
    ) {
        let p = slab.get(packet);
        let egress = self
            .fwd
            .route(p.dst)
            .unwrap_or_else(|| panic!("no route for {} in switch forwarding table", p.dst));
        let vl = self.cfg.sl2vl.vl_for(p.sl);
        let wire = p.wire_size();
        let jitter = match &self.cfg.jitter {
            Some(j) => j.sample(&mut self.rng),
            None => SimDuration::ZERO,
        };
        let eligible_at = now + self.cfg.pipeline_latency + jitter;
        self.buffers.push(
            ingress,
            vl,
            BufEntry {
                packet,
                egress,
                wire,
                arrival: now,
                eligible_at,
            },
        );
        if self.busy_until[egress.index()] <= now && eligible_at <= now {
            self.try_dispatch(now, egress, out);
        } else {
            out.push(SwitchAction::Wake {
                egress,
                at: eligible_at.max(self.busy_until[egress.index()]),
            });
        }
    }

    /// A previously requested wake-up for `egress` fired; appends resulting
    /// actions to `out`.
    pub fn egress_wake(&mut self, now: SimTime, egress: PortId, out: &mut Vec<SwitchAction>) {
        self.try_dispatch(now, egress, out);
    }

    /// The peer downstream of `egress` freed `bytes` of VL buffer; appends
    /// resulting actions to `out`.
    pub fn credit_from_downstream(
        &mut self,
        now: SimTime,
        egress: PortId,
        vl: VirtualLane,
        bytes: u64,
        out: &mut Vec<SwitchAction>,
    ) {
        self.down_credits.replenish(egress, vl, bytes);
        self.try_dispatch(now, egress, out);
    }

    /// Runs one arbitration round for `egress`; dispatches at most one
    /// packet (the port is then busy until its serialization completes).
    /// Operates purely on the buffer bank's head-metadata arrays — no slab
    /// access and no per-round allocation (candidate lists are scratch
    /// reused across rounds).
    fn try_dispatch(&mut self, now: SimTime, egress: PortId, out: &mut Vec<SwitchAction>) {
        let e = egress.index();
        if self.busy_until[e] > now {
            // Mid-transmission; the Wake issued at dispatch covers us.
            return;
        }

        // Clear the previous round's scratch (lazily, so every exit path
        // below is free), then gather head-of-buffer candidates destined to
        // this egress by walking the non-empty slots of the SoA bank in
        // ascending slot order — identical to the historical port-major
        // `for port { for vl }` scan.
        for vl in self.cand_vls.drain(..) {
            self.cand_lists[vl.index()].clear();
        }
        let egress_raw = egress.raw();
        let mut scanned: u64 = 0;
        let mut earliest_future: Option<SimTime> = None;
        let mut credit_blocked = false;
        {
            let Switch {
                buffers,
                down_credits,
                cand_vls,
                cand_lists,
                ..
            } = self;
            let vls = buffers.vls();
            for (w, &word) in buffers.nonempty_words().iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let slot = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if buffers.head_egress_raw(slot) != egress_raw {
                        continue;
                    }
                    scanned += 1;
                    let eligible_at = buffers.head_eligible(slot);
                    if eligible_at > now {
                        earliest_future = Some(match earliest_future {
                            Some(t) => t.min(eligible_at),
                            None => eligible_at,
                        });
                        continue;
                    }
                    let vl = VirtualLane::new((slot % vls) as u8);
                    if !down_credits.can_send(egress, vl, buffers.head_wire(slot)) {
                        credit_blocked = true;
                        continue;
                    }
                    let list = &mut cand_lists[vl.index()];
                    if list.is_empty() {
                        cand_vls.push(vl);
                    }
                    list.push((PortId::new((slot / vls) as u8), buffers.head_arrival(slot)));
                }
            }
        }

        let Some(vl) = self.vlarbs[e].choose(&self.cand_vls) else {
            if credit_blocked {
                self.stats.credit_stalls += 1;
            }
            if let Some(at) = earliest_future {
                out.push(SwitchAction::Wake { egress, at });
            }
            return;
        };
        // The chosen VL came from the candidate set, the scheduler picks
        // among non-empty candidates, and the candidate head is still
        // buffered: all three lookups are infallible by construction, but
        // a panic here would abort a whole sweep, so degrade to skipping
        // this dispatch under debug_assert cover instead.
        let candidates = &self.cand_lists[vl.index()];
        if candidates.is_empty() {
            debug_assert!(false, "chosen VL {vl} missing from the candidate set");
            return;
        }
        let Some(ingress) = self.scheds[e].pick(candidates) else {
            debug_assert!(false, "scheduler declined non-empty candidates");
            return;
        };
        let Some(entry) = self.buffers.pop(ingress, vl) else {
            debug_assert!(false, "candidate head vanished from {ingress:?}/{vl}");
            return;
        };
        let size = entry.wire;
        let consumed = self.down_credits.consume(egress, vl, size);
        debug_assert!(consumed, "candidate was filtered by credit availability");
        self.vlarbs[e].account(vl, size);
        self.scheds[e].account(ingress, size);

        let serialize = self.data_rate.serialize_time(size);
        // Arbitration scan: linear in the number of *contending* heads
        // beyond the first, but a pipelined arbiter never spends more than
        // a small fraction of a packet time deciding.
        let scan = (self.cfg.arb_scan_per_port * scanned.saturating_sub(1))
            .min(SimDuration::from_ps(serialize.as_ps() / 10));
        self.busy_until[e] = now + scan + serialize;
        self.stats.forwarded_packets += 1;
        self.stats.forwarded_bytes += size;

        out.push(SwitchAction::ReturnCredit {
            ingress,
            vl,
            bytes: size,
        });
        out.push(SwitchAction::Transmit {
            egress,
            packet: entry.packet,
            start_after: scan,
            serialize,
        });
        out.push(SwitchAction::Wake {
            egress,
            at: self.busy_until[e],
        });

        // The dequeue may expose a head packet bound for a *different*
        // egress whose arbiter has no pending wake (its arrival wake fired
        // while this packet blocked the FIFO). Chain a wake so progress on
        // one output port can never strand traffic for another.
        if let Some(next) = self.buffers.head(ingress, vl) {
            if next.egress != egress {
                out.push(SwitchAction::Wake {
                    egress: next.egress,
                    at: now.max(next.eligible_at),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::config::{ClusterConfig, SchedPolicy};
    use rperf_model::ids::PacketId;
    use rperf_model::{FlowId, MsgId, Packet, PacketKind, QpNum, ServiceLevel, Transport, Verb};

    fn test_switch(policy: SchedPolicy) -> Switch {
        let mut cfg = ClusterConfig::omnet_simulator().switch;
        cfg.policy = policy;
        let rate = ClusterConfig::omnet_simulator().link.data_rate();
        let mut sw = Switch::new(cfg, rate, SimRng::new(1));
        for lid in 0..7u16 {
            sw.set_route(Lid::new(lid), PortId::new(lid as u8));
        }
        sw
    }

    fn pkt(id: u64, dst: u16, payload: u64, sl: u8) -> Packet {
        Packet {
            id: PacketId::new(id),
            flow: FlowId::new(0),
            msg: MsgId::new(id),
            src: Lid::new(6),
            dst: Lid::new(dst),
            dst_qp: QpNum::new(0),
            sl: ServiceLevel::new(sl),
            kind: PacketKind::Data {
                verb: Verb::Send,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
            payload,
            overhead: 52,
            injected_at: SimTime::ZERO,
        }
    }

    fn arrive(
        sw: &mut Switch,
        slab: &mut PacketSlab,
        now: SimTime,
        ingress: PortId,
        packet: Packet,
    ) -> Vec<SwitchAction> {
        let handle = slab.alloc(packet);
        let mut out = Vec::new();
        sw.packet_arrival(now, ingress, handle, slab, &mut out);
        out
    }

    fn wake(sw: &mut Switch, now: SimTime, egress: PortId) -> Vec<SwitchAction> {
        let mut out = Vec::new();
        sw.egress_wake(now, egress, &mut out);
        out
    }

    fn wake_of(actions: &[SwitchAction]) -> SimTime {
        actions
            .iter()
            .find_map(|a| match a {
                SwitchAction::Wake { at, .. } => Some(*at),
                _ => None,
            })
            .expect("expected a wake action")
    }

    fn transmit_id(actions: &[SwitchAction], slab: &PacketSlab) -> Option<PacketId> {
        actions.iter().find_map(|a| match a {
            SwitchAction::Transmit { packet, .. } => Some(slab.get(*packet).id),
            _ => None,
        })
    }

    #[test]
    fn zero_load_forwarding_timing() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        let t0 = SimTime::from_ns(100);
        let actions = arrive(&mut sw, &mut slab, t0, PortId::new(1), pkt(1, 0, 64, 0));
        // Not yet eligible: a wake at t0 + pipeline (no jitter in the
        // simulator profile).
        let at = wake_of(&actions);
        assert_eq!(at, t0 + sw.config().pipeline_latency);

        let actions = wake(&mut sw, at, PortId::new(0));
        let transmit = actions
            .iter()
            .find_map(|a| match a {
                SwitchAction::Transmit {
                    egress,
                    packet,
                    start_after,
                    serialize,
                } => Some((*egress, *packet, *start_after, *serialize)),
                _ => None,
            })
            .expect("expected a transmit");
        assert_eq!(transmit.0, PortId::new(0));
        assert_eq!(slab.get(transmit.1).id, PacketId::new(1));
        // Simulator profile has no arbitration scan cost.
        assert_eq!(transmit.2, SimDuration::ZERO);
        assert!(transmit.3 > SimDuration::ZERO);
        assert_eq!(sw.stats().forwarded_packets, 1);
    }

    #[test]
    fn credit_returned_on_dispatch() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        let t0 = SimTime::from_ns(0);
        let a = arrive(&mut sw, &mut slab, t0, PortId::new(1), pkt(1, 0, 4096, 0));
        let at = wake_of(&a);
        let actions = wake(&mut sw, at, PortId::new(0));
        let credit = actions.iter().find_map(|a| match a {
            SwitchAction::ReturnCredit { ingress, vl, bytes } => Some((*ingress, *vl, *bytes)),
            _ => None,
        });
        assert_eq!(credit, Some((PortId::new(1), VirtualLane::new(0), 4148)));
    }

    #[test]
    fn fcfs_orders_across_ingress_ports() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        // Two packets from different ports, second-arrived on lower port id.
        arrive(
            &mut sw,
            &mut slab,
            SimTime::from_ns(10),
            PortId::new(3),
            pkt(1, 0, 64, 0),
        );
        let a = arrive(
            &mut sw,
            &mut slab,
            SimTime::from_ns(20),
            PortId::new(2),
            pkt(2, 0, 64, 0),
        );
        let at = wake_of(&a).max(SimTime::from_ns(10) + sw.config().pipeline_latency);
        let first = wake(&mut sw, at, PortId::new(0));
        let got = transmit_id(&first, &slab).unwrap();
        assert_eq!(got, PacketId::new(1), "older arrival must win under FCFS");
    }

    #[test]
    fn rr_alternates_between_ports() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::RoundRobin);
        let t = SimTime::from_ns(0);
        // Queue two packets per port.
        for (port, base) in [(1u8, 10u64), (2, 20)] {
            for k in 0..2 {
                arrive(
                    &mut sw,
                    &mut slab,
                    SimTime::from_ns(base + k),
                    PortId::new(port),
                    pkt(u64::from(port) * 10 + k, 0, 64, 0),
                );
            }
        }
        let mut now = t + sw.config().pipeline_latency + SimDuration::from_ns(30);
        let mut order = Vec::new();
        for _ in 0..4 {
            let actions = wake(&mut sw, now, PortId::new(0));
            for a in &actions {
                if let SwitchAction::Transmit { packet, .. } = a {
                    order.push(slab.get(*packet).id.raw() / 10);
                }
            }
            now = wake_of(&actions).max(now + SimDuration::from_ns(1));
        }
        assert_eq!(order, vec![1, 2, 1, 2], "RR must alternate ports");
    }

    #[test]
    fn dispatch_blocked_without_credits_resumes_on_replenish() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        // Downstream grants exactly one 4148 B packet of credit on VL0.
        sw.set_downstream_credits(PortId::new(0), CreditLedger::new(9, 4_148));
        arrive(
            &mut sw,
            &mut slab,
            SimTime::ZERO,
            PortId::new(1),
            pkt(1, 0, 4096, 0),
        );
        let a = arrive(
            &mut sw,
            &mut slab,
            SimTime::ZERO,
            PortId::new(2),
            pkt(2, 0, 4096, 0),
        );
        let at = wake_of(&a);
        // First packet dispatches and consumes the whole grant.
        let first = wake(&mut sw, at, PortId::new(0));
        let busy_until = wake_of(&first);
        assert_eq!(transmit_id(&first, &slab), Some(PacketId::new(1)));

        // Port free again, but the second packet has no credits.
        let actions = wake(&mut sw, busy_until, PortId::new(0));
        assert!(
            actions.is_empty(),
            "second packet must stall without credits: {actions:?}"
        );
        assert_eq!(sw.stats().credit_stalls, 1);
        assert_eq!(sw.total_buffered(), 4148);

        // Credits return from downstream: dispatch proceeds.
        let mut actions = Vec::new();
        sw.credit_from_downstream(
            busy_until + SimDuration::from_ns(10),
            PortId::new(0),
            VirtualLane::new(0),
            4_148,
            &mut actions,
        );
        assert_eq!(
            transmit_id(&actions, &slab),
            Some(PacketId::new(2)),
            "{actions:?}"
        );
        assert_eq!(sw.total_buffered(), 0);
    }

    #[test]
    fn high_priority_vl_preempts_queued_low() {
        let mut slab = PacketSlab::new();
        let mut cfg = ClusterConfig::omnet_simulator().with_dedicated_sl().switch;
        cfg.policy = SchedPolicy::Fcfs;
        let rate = ClusterConfig::omnet_simulator().link.data_rate();
        let mut sw = Switch::new(cfg, rate, SimRng::new(2));
        sw.set_route(Lid::new(0), PortId::new(0));

        // Older low-priority packet and newer high-priority packet, both
        // eligible.
        arrive(
            &mut sw,
            &mut slab,
            SimTime::from_ns(0),
            PortId::new(1),
            pkt(1, 0, 4096, 0),
        );
        arrive(
            &mut sw,
            &mut slab,
            SimTime::from_ns(50),
            PortId::new(2),
            pkt(2, 0, 64, 1),
        );
        let now = SimTime::from_ns(300);
        let actions = wake(&mut sw, now, PortId::new(0));
        let got = transmit_id(&actions, &slab).unwrap();
        assert_eq!(
            got,
            PacketId::new(2),
            "high-priority VL1 must be served before VL0 despite FCFS age"
        );
    }

    #[test]
    fn busy_egress_defers_dispatch() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        arrive(
            &mut sw,
            &mut slab,
            SimTime::ZERO,
            PortId::new(1),
            pkt(1, 0, 4096, 0),
        );
        let at = SimTime::ZERO + sw.config().pipeline_latency;
        let first = wake(&mut sw, at, PortId::new(0));
        let busy_until = wake_of(&first);
        // Second packet eligible while port busy.
        arrive(&mut sw, &mut slab, at, PortId::new(2), pkt(2, 0, 64, 0));
        let mid = at + SimDuration::from_ns(250);
        assert!(sw.egress_busy(PortId::new(0), mid));
        let none = wake(&mut sw, mid, PortId::new(0));
        assert!(none.is_empty(), "{none:?}");
        // At busy_until the port frees and forwards the second packet.
        let actions = wake(&mut sw, busy_until, PortId::new(0));
        assert_eq!(transmit_id(&actions, &slab), Some(PacketId::new(2)));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unrouted_destination_panics() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        arrive(
            &mut sw,
            &mut slab,
            SimTime::ZERO,
            PortId::new(0),
            pkt(1, 600, 64, 0),
        );
    }

    #[test]
    fn occupancy_queries() {
        let mut slab = PacketSlab::new();
        let mut sw = test_switch(SchedPolicy::Fcfs);
        arrive(
            &mut sw,
            &mut slab,
            SimTime::ZERO,
            PortId::new(1),
            pkt(1, 0, 4096, 0),
        );
        assert_eq!(sw.occupancy(PortId::new(1), VirtualLane::new(0)), 4148);
        assert_eq!(sw.occupancy(PortId::new(2), VirtualLane::new(0)), 0);
        assert_eq!(sw.total_buffered(), 4148);
    }
}
