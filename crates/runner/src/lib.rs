//! A parallel, deterministic sweep runner for independent simulations.
//!
//! The figure sweeps in `rperf-bench` run hundreds of *independent*
//! `(parameter, seed)` simulations; each one is single-threaded and
//! deterministic (DESIGN.md §6), but nothing orders them relative to each
//! other. [`Sweep`] fans such jobs across `std::thread::scope` workers and
//! collects results **keyed by job index**, so the output `Vec` — and
//! therefore every printed series, table, and JSON artifact derived from
//! it — is bit-identical to a serial run for any worker count.
//!
//! std-only by design: the workspace takes no `rayon`/`crossbeam`
//! dependency (DESIGN.md §6). A work index is claimed from an atomic
//! counter, so jobs with wildly different costs still load-balance.
//!
//! # Examples
//!
//! ```
//! use rperf_runner::Sweep;
//!
//! let squares = Sweep::new(4).run((0..100u64).collect(), |_idx, n| n * n);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! // Any worker count produces the same output.
//! assert_eq!(squares, Sweep::new(1).run((0..100u64).collect(), |_, n| n * n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{SubmitError, WorkerPool};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sweep executor with a fixed worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sweep {
    workers: usize,
}

impl Sweep {
    /// A sweep running on `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Sweep {
            workers: workers.max(1),
        }
    }

    /// A sweep using all available parallelism (the `--jobs` default).
    pub fn available() -> Self {
        Sweep::new(available_parallelism())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job and returns the results **in job order**,
    /// regardless of which worker ran which job when.
    ///
    /// `f` receives the job's index and the job itself. Each job must be
    /// independent of the others; `f` is called exactly once per job.
    ///
    /// # Panics
    ///
    /// If `f` panics for any job, the panic propagates after all workers
    /// have stopped (the behavior of `std::thread::scope`).
    pub fn run<J, T, F>(&self, jobs: Vec<J>, f: F) -> Vec<T>
    where
        J: Send,
        T: Send,
        F: Fn(usize, J) -> T + Sync,
    {
        let n = jobs.len();
        if self.workers == 1 || n <= 1 {
            // Serial fast path: no thread or lock overhead.
            return jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect();
        }

        // Each job and result slot gets its own mutex; workers claim job
        // indices from a shared counter, so contention is one atomic
        // fetch-add per job and the locks are never contended.
        let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let out = f(i, job);
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker skipped a job")
            })
            .collect()
    }
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::available()
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How a thread budget divides between sweep workers and the worker
/// domains (shards) each job runs internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    /// Concurrent sweep jobs (outer [`Sweep`] workers).
    pub workers: usize,
    /// Shard threads inside each job (inner worker domains).
    pub shards_per_job: usize,
}

impl Plan {
    /// Total threads a sweep under this plan keeps busy.
    pub fn threads(&self) -> usize {
        self.workers * self.shards_per_job
    }
}

/// Divides a thread budget between sweep workers and per-job shards.
///
/// When each sweep job is itself a sharded simulation running
/// `shards_per_job` worker threads (DESIGN.md §3.7), fanning out
/// `threads` jobs as well would oversubscribe the machine
/// `shards_per_job`-fold — and a sharded simulation degrades
/// disproportionately under oversubscription, because every
/// conservative-window barrier its shards reach turns into context
/// switches. So the budget is divided, and the *sweep* dimension keeps
/// what it can use: independent jobs speed up near-linearly, while
/// shards pay barrier overhead per window. The shard dimension is only
/// worth threads the sweep cannot fill on its own (few jobs, many
/// cores).
///
/// `workers = max(1, threads / shards_per_job)`; both inputs are
/// clamped to at least 1.
pub fn plan_parallelism(threads: usize, shards_per_job: usize) -> Plan {
    let shards_per_job = shards_per_job.max(1);
    Plan {
        workers: (threads.max(1) / shards_per_job).max(1),
        shards_per_job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = jobs.iter().map(|n| n * 3 + 1).collect();
        for workers in [1, 2, 3, 4, 8, 300] {
            let got = Sweep::new(workers).run(jobs.clone(), |_, n| n * 3 + 1);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn index_matches_job_position() {
        let got = Sweep::new(4).run(vec![10usize, 20, 30, 40], |i, j| (i, j));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let got = Sweep::new(5).run((0..1000u64).collect(), |_, n| {
            calls.fetch_add(1, Ordering::Relaxed);
            n
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(got.iter().copied().collect::<HashSet<_>>().len(), 1000);
    }

    #[test]
    fn handles_empty_and_single_job_sets() {
        let empty: Vec<u64> = Sweep::new(8).run(vec![], |_, n| n);
        assert!(empty.is_empty());
        assert_eq!(Sweep::new(8).run(vec![42u64], |_, n| n + 1), vec![43]);
    }

    #[test]
    fn worker_count_is_clamped_and_defaulted() {
        assert_eq!(Sweep::new(0).workers(), 1);
        assert!(Sweep::available().workers() >= 1);
        assert_eq!(Sweep::default(), Sweep::available());
    }

    #[test]
    fn plan_divides_threads_between_workers_and_shards() {
        // Unsharded jobs: the whole budget goes to sweep workers.
        assert_eq!(plan_parallelism(8, 1).workers, 8);
        // Sharded jobs split the budget without oversubscribing.
        let p = plan_parallelism(8, 4);
        assert_eq!((p.workers, p.shards_per_job), (2, 4));
        assert_eq!(p.threads(), 8);
        // The budget never rounds up past the requested thread count…
        assert!(plan_parallelism(6, 4).threads() <= 6 || plan_parallelism(6, 4).workers == 1);
        // …and both dimensions are clamped to at least 1.
        assert_eq!(plan_parallelism(1, 16).workers, 1);
        assert_eq!(
            plan_parallelism(0, 0),
            Plan {
                workers: 1,
                shards_per_job: 1
            }
        );
    }

    #[test]
    fn unbalanced_job_costs_still_order_correctly() {
        // Early jobs sleep; late jobs finish first on a multi-worker run.
        let got = Sweep::new(4).run((0..16u64).collect(), |i, n| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            n
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
