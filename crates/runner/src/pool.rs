//! A long-lived, panic-isolated worker pool for services.
//!
//! [`Sweep`](crate::Sweep) is batch-oriented: it owns its jobs up front
//! and joins at the end. A daemon needs the opposite shape — a **warm**
//! pool that outlives any one request, with a *bounded* admission queue
//! (so overload turns into explicit shedding, not an unbounded backlog)
//! and a panic-safe job boundary: a handler panic retires only the one
//! worker that hit it, a replacement thread is spawned, and the pool keeps
//! serving.
//!
//! The pool deliberately performs **no wall-clock reads** (lint rule D2
//! covers this crate): [`WorkerPool::drain`] bounds its wait by counting
//! fixed-length sleeps, and deadline enforcement belongs to the caller's
//! job handler (see `rperf-serve`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Why [`WorkerPool::try_submit`] rejected a job; the job is handed back.
#[derive(Debug)]
pub enum SubmitError<J> {
    /// The bounded admission queue is full — shed load and retry later.
    Full(J),
    /// The pool is closed ([`WorkerPool::close`] / [`WorkerPool::drain`]).
    Closed(J),
}

struct Inner<J> {
    tx: Mutex<Option<SyncSender<J>>>,
    rx: Mutex<Receiver<J>>,
    handler: Box<dyn Fn(J) + Send + Sync>,
    live: AtomicUsize,
    panics: AtomicU64,
    respawned: AtomicU64,
}

/// A warm worker pool with a bounded admission queue and panic isolation.
///
/// Jobs submitted through [`try_submit`](WorkerPool::try_submit) are
/// executed by `workers` long-lived threads in admission order. If the
/// handler panics, the panic is caught at the job boundary: the panicking
/// worker retires (fresh stack, fresh thread-locals) and a replacement is
/// spawned before it exits, so the pool's capacity is restored without any
/// caller noticing more than that one failed job.
///
/// The handler is responsible for reporting each job's outcome (for
/// example over a per-job channel); to guarantee a reply *even when the
/// handler panics*, callers pair the handler with a drop guard — see
/// `rperf-serve` for the pattern.
///
/// # Examples
///
/// ```
/// use rperf_runner::WorkerPool;
/// use std::sync::mpsc::sync_channel;
///
/// let (tx, rx) = sync_channel(16);
/// let pool = WorkerPool::new(2, 16, move |n: u64| {
///     tx.send(n * 2).expect("receiver alive");
/// });
/// pool.try_submit(21).expect("queue has room");
/// assert_eq!(rx.recv().expect("worker replies"), 42);
/// assert!(pool.drain(1, 1_000));
/// ```
pub struct WorkerPool<J: Send + 'static> {
    inner: Arc<Inner<J>>,
}

impl<J: Send + 'static> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("live_workers", &self.live_workers())
            .field("panics", &self.panics())
            .field("respawned", &self.respawned())
            .finish_non_exhaustive()
    }
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Starts a pool of `workers` threads (clamped to at least 1) behind a
    /// bounded queue of `queue_depth` jobs (clamped to at least 1).
    pub fn new<F>(workers: usize, queue_depth: usize, handler: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (tx, rx) = sync_channel(queue_depth.max(1));
        let inner = Arc::new(Inner {
            tx: Mutex::new(Some(tx)),
            rx: Mutex::new(rx),
            handler: Box::new(handler),
            live: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
        });
        for _ in 0..workers.max(1) {
            spawn_worker(Arc::clone(&inner));
        }
        WorkerPool { inner }
    }

    /// Offers a job to the admission queue without blocking.
    ///
    /// Full and closed queues hand the job back through [`SubmitError`],
    /// so the caller can shed load with a typed response instead of
    /// queueing unboundedly.
    pub fn try_submit(&self, job: J) -> Result<(), SubmitError<J>> {
        let guard = self.inner.tx.lock().expect("pool sender poisoned");
        match guard.as_ref() {
            None => Err(SubmitError::Closed(job)),
            Some(tx) => tx.try_send(job).map_err(|e| match e {
                TrySendError::Full(j) => SubmitError::Full(j),
                TrySendError::Disconnected(j) => SubmitError::Closed(j),
            }),
        }
    }

    /// Closes the admission queue: further submits fail with
    /// [`SubmitError::Closed`]; already-queued jobs still run.
    pub fn close(&self) {
        self.inner.tx.lock().expect("pool sender poisoned").take();
    }

    /// Closes the queue and waits for every worker to finish its backlog
    /// and exit, polling every `poll_ms` for at most `max_wait_ms`.
    ///
    /// Returns `true` when the pool fully drained within the bound. The
    /// wait counts sleeps rather than reading a clock, so it is only as
    /// accurate as the sleep granularity — callers needing hard deadlines
    /// enforce them inside the job handler.
    pub fn drain(&self, poll_ms: u64, max_wait_ms: u64) -> bool {
        self.close();
        let poll = poll_ms.max(1);
        let mut waited = 0u64;
        while self.live_workers() > 0 {
            if waited >= max_wait_ms {
                return false;
            }
            std::thread::sleep(core::time::Duration::from_millis(poll));
            waited += poll;
        }
        true
    }

    /// Worker threads currently alive (replacements included).
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Handler panics caught at the job boundary so far.
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::SeqCst)
    }

    /// Replacement workers spawned after panics so far.
    pub fn respawned(&self) -> u64 {
        self.inner.respawned.load(Ordering::SeqCst)
    }
}

fn spawn_worker<J: Send + 'static>(inner: Arc<Inner<J>>) {
    inner.live.fetch_add(1, Ordering::SeqCst);
    std::thread::spawn(move || worker_loop(inner));
}

fn worker_loop<J: Send + 'static>(inner: Arc<Inner<J>>) {
    loop {
        // Holding the receiver lock across `recv` serializes job pickup
        // (not job execution): whichever worker holds the lock sleeps in
        // recv, the rest sleep on the mutex. The lock is released before
        // the handler runs.
        let job = {
            let rx = inner.rx.lock().expect("pool receiver poisoned");
            rx.recv()
        };
        let Ok(job) = job else {
            break; // queue closed and drained
        };
        if catch_unwind(AssertUnwindSafe(|| (inner.handler)(job))).is_err() {
            // The worker that panicked retires; a replacement restores
            // capacity before this thread's exit is observable.
            inner.panics.fetch_add(1, Ordering::SeqCst);
            inner.respawned.fetch_add(1, Ordering::SeqCst);
            spawn_worker(Arc::clone(&inner));
            break;
        }
    }
    inner.live.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn jobs_run_and_reply() {
        let (tx, rx) = channel();
        let pool = WorkerPool::new(3, 8, move |n: u64| tx.send(n + 1).expect("rx alive"));
        for n in 0..20 {
            while pool.try_submit(n).is_err() {
                std::thread::sleep(core::time::Duration::from_millis(1));
            }
        }
        let mut got: Vec<u64> = (0..20).map(|_| rx.recv().expect("reply")).collect();
        got.sort_unstable();
        assert_eq!(got, (1..=20).collect::<Vec<_>>());
        assert!(pool.drain(1, 2_000));
        assert_eq!(pool.live_workers(), 0);
    }

    #[test]
    fn panicking_job_retires_and_respawns_worker() {
        let (tx, rx) = channel();
        let pool = WorkerPool::new(2, 8, move |n: u64| {
            if n == 13 {
                panic!("injected fault");
            }
            tx.send(n).expect("rx alive");
        });
        pool.try_submit(13).expect("room");
        // The pool must keep serving after the panic.
        for n in [1u64, 2, 3] {
            while pool.try_submit(n).is_err() {
                std::thread::sleep(core::time::Duration::from_millis(1));
            }
        }
        let mut got: Vec<u64> = (0..3).map(|_| rx.recv().expect("reply")).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        // The panic is counted after the catch, which can lag the other
        // worker's replies; wait (bounded) for it to land.
        for _ in 0..2_000 {
            if pool.panics() == 1 {
                break;
            }
            std::thread::sleep(core::time::Duration::from_millis(1));
        }
        assert_eq!(pool.panics(), 1);
        assert_eq!(pool.respawned(), 1);
        assert!(pool.drain(1, 2_000));
    }

    #[test]
    fn full_queue_sheds_and_closed_queue_rejects() {
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool = WorkerPool::new(1, 1, move |_: u64| {
            gate_rx.lock().expect("gate").recv().ok();
        });
        pool.try_submit(0).expect("first job admitted");
        // One job may already be in the worker's hands; fill the queue slot.
        let mut shed = false;
        for n in 1..=2 {
            if let Err(SubmitError::Full(j)) = pool.try_submit(n) {
                assert_eq!(j, n);
                shed = true;
                break;
            }
        }
        assert!(shed, "bounded queue never shed");
        gate_tx.send(()).ok();
        gate_tx.send(()).ok();
        pool.close();
        match pool.try_submit(99) {
            Err(SubmitError::Closed(j)) => assert_eq!(j, 99),
            other => panic!("expected Closed, got {other:?}"),
        }
        drop(gate_tx);
        assert!(pool.drain(1, 2_000));
    }
}
