//! Differential property test for sharded execution: for *any* valid
//! scenario the generator can produce — random topology, role matrix,
//! device profile, scheduling policy, QoS mode, and measurement window —
//! executing on a partitioned fabric must reproduce the sequential
//! engine byte for byte (`ScenarioOutcome::to_json`), for every shard
//! count. Sharding is an execution strategy, not part of scenario
//! identity; this is the contract that lets the CLI, the bench harness,
//! and rperf-serve pick `shards` freely without invalidating results.

use proptest::prelude::*;
use rperf::{execute, DeviceProfile, QosMode, Role, ScenarioSpec, SlSpec};
use rperf_fabric::Topology;
use rperf_model::config::SchedPolicy;
use rperf_sim::SimDuration;
use rperf_subnet::TopologySpec;

/// splitmix64: turns one sampled u64 into an arbitrary number of
/// independent per-node draws without pulling in collection strategies.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sl_for(bits: u64) -> SlSpec {
    if bits.is_multiple_of(3) {
        SlSpec::Auto
    } else {
        SlSpec::Fixed(((bits >> 2) % 16) as u8)
    }
}

/// A sender role aimed at `target`, drawn from every role kind.
fn role_for(bits: u64, target: usize) -> Role {
    let payload = 1 + (bits >> 8) % 4096;
    match bits % 6 {
        0 => Role::RPerf {
            target,
            payload,
            sl: sl_for(bits >> 3),
            seed_salt: mix(bits) & 0xFFFF,
        },
        1 => Role::Lsg {
            target,
            payload,
            sl: sl_for(bits >> 3),
        },
        2 => Role::Bsg {
            target,
            payload,
            window: 1 + ((bits >> 4) % 128) as usize,
            batch: 1 + ((bits >> 13) % 8) as usize,
            sl: sl_for(bits >> 3),
        },
        3 => Role::PretendLsg {
            target,
            chunk: 1 + (bits >> 8) % 2048,
            sl: sl_for(bits >> 3),
        },
        4 => Role::Perftest {
            peer: target,
            payload,
        },
        _ => Role::Qperf {
            peer: target,
            payload,
        },
    }
}

/// Topologies spanning one to three switches plus the switchless pair,
/// so the partitioner sees every device-graph shape we ship.
fn topology_for(pick: u8, size: usize) -> Topology {
    match pick % 5 {
        0 => Topology::DirectPair,
        1 => Topology::SingleSwitch { hosts: 2 + size },
        2 => Topology::TwoSwitch {
            upstream: 1 + size / 2,
            downstream: 1 + size,
        },
        3 => Topology::Spec(TopologySpec::chain(3, &[1, size, 1])),
        _ => Topology::Spec(TopologySpec::star(2, 1 + size)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated scenario produces identical JSON under shards = 1,
    /// a mid shard count, and a shard count larger than the device count
    /// (which clamps — the degenerate partitions must behave too).
    #[test]
    fn sharded_outcome_matches_sequential_for_any_scenario(
        topo_pick in 0u8..5,
        size in 0usize..4,
        knobs in any::<u64>(),
        duration_us in 2u64..20,
        seed in 1u64..1000,
        mid_shards in 2usize..5,
    ) {
        let topology = topology_for(topo_pick, size);
        let hosts = topology.hosts();
        let sink = hosts - 1;
        let profile = if knobs & 1 == 0 {
            DeviceProfile::Hardware
        } else {
            DeviceProfile::OmnetSimulator
        };
        let policy = match (knobs >> 1) % 3 {
            0 => SchedPolicy::Fcfs,
            1 => SchedPolicy::RoundRobin,
            _ => SchedPolicy::FairShare,
        };
        let qos = match (knobs >> 3) % 3 {
            0 => QosMode::SharedSl,
            1 => QosMode::DedicatedSl,
            _ => QosMode::DedicatedSlWithPretend,
        };
        let mut spec = ScenarioSpec::new("prop_shard", topology)
            .with_profile(profile)
            .with_policy(policy)
            .with_qos(qos)
            .with_window(
                SimDuration::from_ns(200 * (knobs % 4)),
                SimDuration::from_us(duration_us),
            );
        for node in 0..sink {
            spec = spec.with_role(node, role_for(mix(knobs ^ node as u64), sink));
        }
        spec = spec.with_role(sink, Role::Sink);
        prop_assert!(spec.validate().is_ok(), "generator made an invalid spec");

        let sequential = execute(&spec, seed).to_json();
        // Over-sharding is a validation error now, so cap at the device
        // count (hosts + switches); 64 still exercises one-device shards
        // on every topology big enough to allow it.
        let devices = hosts + spec.topology.switches();
        for shards in [mid_shards.min(devices), 64.min(devices)] {
            let sharded = execute(&spec.clone().with_shards(shards), seed).to_json();
            prop_assert_eq!(
                &sharded,
                &sequential,
                "outcome diverged at shards = {} (topology {:?})",
                shards,
                spec.topology
            );
        }
    }
}

/// The committed example scenario files — every spec feature users see in
/// `examples/scenarios/` — run shard-differentially end to end. The
/// measurement window is shortened so the incast congestion still builds
/// up without turning the test into a benchmark.
#[test]
fn example_scenarios_are_shard_invariant() {
    for name in ["incast_8.scn", "chain_gaming.scn"] {
        let path = format!(
            "{}/../../examples/scenarios/{name}",
            env!("CARGO_MANIFEST_DIR")
        );
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let spec = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("parsing {path}: {e}"))
            .with_window(SimDuration::from_us(50), SimDuration::from_us(300));
        let sequential = execute(&spec, 1).to_json();
        for shards in [2, 4] {
            let sharded = execute(&spec.clone().with_shards(shards), 1).to_json();
            assert_eq!(
                sharded, sequential,
                "{name} diverged between shards = 1 and shards = {shards}"
            );
        }
    }
}
