//! Property tests for the scenario text format: any spec the generator
//! produces round-trips losslessly through `to_text` → `parse`, the
//! canonical emission is a fixed point, and malformed inputs are
//! rejected with the offending line number.

use proptest::prelude::*;
use rperf::{DeviceProfile, QosMode, Role, ScenarioSpec, SlSpec};
use rperf_fabric::Topology;
use rperf_model::config::SchedPolicy;
use rperf_sim::SimDuration;
use rperf_subnet::TopologySpec;

/// splitmix64: turns one sampled u64 into an arbitrary number of
/// independent per-node draws without pulling in collection strategies.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sl_for(bits: u64) -> SlSpec {
    if bits.is_multiple_of(3) {
        SlSpec::Auto
    } else {
        SlSpec::Fixed(((bits >> 2) % 16) as u8)
    }
}

/// A sender role aimed at `target`, with every field exercised.
fn role_for(bits: u64, target: usize) -> Role {
    let payload = 1 + (bits >> 8) % 8192;
    match bits % 6 {
        0 => Role::RPerf {
            target,
            payload,
            sl: sl_for(bits >> 3),
            seed_salt: mix(bits) & 0xFFFF,
        },
        1 => Role::Lsg {
            target,
            payload,
            sl: sl_for(bits >> 3),
        },
        2 => Role::Bsg {
            target,
            payload,
            window: 1 + ((bits >> 4) % 512) as usize,
            batch: 1 + ((bits >> 13) % 8) as usize,
            sl: sl_for(bits >> 3),
        },
        3 => Role::PretendLsg {
            target,
            chunk: 1 + (bits >> 8) % 2048,
            sl: sl_for(bits >> 3),
        },
        4 => Role::Perftest {
            peer: target,
            payload,
        },
        _ => Role::Qperf {
            peer: target,
            payload,
        },
    }
}

fn topology_for(pick: u8, size: usize) -> Topology {
    match pick % 5 {
        0 => Topology::DirectPair,
        1 => Topology::SingleSwitch { hosts: 2 + size },
        2 => Topology::TwoSwitch {
            upstream: 1 + size / 2,
            downstream: 1 + size,
        },
        3 => Topology::Spec(TopologySpec::chain(3, &[1, size, 1])),
        _ => Topology::Spec(TopologySpec::star(2, 1 + size)),
    }
}

proptest! {
    /// Build an arbitrary valid spec, emit it, parse it back: the parse
    /// must reproduce the spec exactly and the emission must be a fixed
    /// point of `parse ∘ to_text`.
    #[test]
    fn spec_round_trips_through_text(
        name in prop::sample::select(vec![
            "plain", "with space", "qu\"ote", "back\\slash", "hash # inside", "üñïçødé",
        ]),
        topo_pick in 0u8..5,
        size in 0usize..4,
        knobs in any::<u64>(),
        window in (1u64..5_000_000_000, 0u64..1_000_000_000),
    ) {
        let topology = topology_for(topo_pick, size);
        let hosts = topology.hosts();
        let sink = hosts - 1;
        let profile = if knobs & 1 == 0 {
            DeviceProfile::Hardware
        } else {
            DeviceProfile::OmnetSimulator
        };
        let policy = match (knobs >> 1) % 3 {
            0 => SchedPolicy::Fcfs,
            1 => SchedPolicy::RoundRobin,
            _ => SchedPolicy::FairShare,
        };
        let qos = match (knobs >> 3) % 3 {
            0 => QosMode::SharedSl,
            1 => QosMode::DedicatedSl,
            _ => QosMode::DedicatedSlWithPretend,
        };
        let (duration_ps, warmup_ps) = window;
        let mut spec = ScenarioSpec::new(name, topology)
            .with_profile(profile)
            .with_policy(policy)
            .with_qos(qos)
            .with_window(
                SimDuration::from_ps(warmup_ps),
                SimDuration::from_ps(duration_ps),
            );
        for node in 0..sink {
            spec = spec.with_role(node, role_for(mix(knobs ^ node as u64), sink));
        }
        spec = spec.with_role(sink, Role::Sink);
        prop_assert!(spec.validate().is_ok(), "generator made an invalid spec");

        let text = spec.to_text();
        let parsed = ScenarioSpec::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(&parsed, &spec, "round-trip changed the spec");
        prop_assert_eq!(parsed.to_text(), text, "emission is not a fixed point");
    }

    /// Appending a junk key to a valid emission is rejected, and the
    /// error names exactly the appended line.
    #[test]
    fn junk_suffix_is_rejected_with_its_line_number(
        topo_pick in 0u8..5,
        knobs in any::<u64>(),
    ) {
        let topology = topology_for(topo_pick, 1);
        let sink = topology.hosts() - 1;
        let mut spec = ScenarioSpec::new("suffix", topology);
        for node in 0..sink {
            spec = spec.with_role(node, role_for(mix(knobs ^ node as u64), sink));
        }
        spec = spec.with_role(sink, Role::Sink);

        let mut text = spec.to_text();
        let junk_line = text.lines().count() + 1;
        text.push_str("definitely_not_a_key = 1\n");
        let err = ScenarioSpec::parse(&text).expect_err("junk key accepted");
        prop_assert_eq!(err.line, junk_line, "error blamed the wrong line: {}", err);
    }
}

/// Hand-written malformed inputs: each is rejected, and the error
/// carries the exact line of the offense.
#[test]
fn malformed_inputs_are_rejected_with_line_numbers() {
    let err_at = |text: &str| ScenarioSpec::parse(text).expect_err(text);

    let unknown_top = err_at("name = \"x\"\nwat = 1\n");
    assert_eq!(unknown_top.line, 2, "{unknown_top}");

    let bad_int = err_at("[topology]\nkind = \"single_switch\"\nhosts = \"two\"\n");
    assert_eq!(bad_int.line, 3, "{bad_int}");

    let unknown_kind =
        err_at("[topology]\nkind = \"direct_pair\"\n\n[[role]]\nnode = 0\nkind = \"dancer\"\n");
    assert_eq!(unknown_kind.line, 6, "{unknown_kind}");

    let key_for_wrong_kind = err_at(
        "[topology]\nkind = \"direct_pair\"\n\n[[role]]\nnode = 0\nkind = \"sink\"\ntarget = 1\n",
    );
    assert_eq!(key_for_wrong_kind.line, 7, "{key_for_wrong_kind}");

    let no_equals = err_at("name\n");
    assert_eq!(no_equals.line, 1, "{no_equals}");

    let unknown_section = err_at("name = \"x\"\n\n[wiring]\nkind = \"direct_pair\"\n");
    assert_eq!(unknown_section.line, 3, "{unknown_section}");

    let bad_qos = err_at("qos = \"polite\"\n");
    assert_eq!(bad_qos.line, 1, "{bad_qos}");

    // Errors render as `line N: message` so the CLI can prefix the file.
    assert!(
        unknown_top.to_string().starts_with("line 2: "),
        "{unknown_top}"
    );
}
