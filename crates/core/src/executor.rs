//! The generic scenario executor: one code path from a [`ScenarioSpec`]
//! to measurements.
//!
//! [`execute`] builds the fabric for the spec's topology via
//! [`FabricBuilder`], attaches one application per role through the
//! workload factory, runs the simulation over the spec's window and
//! collects a per-role [`RoleReport`]. Every experiment in the suite —
//! each paper figure, the CLI subcommands, and arbitrary user-written
//! scenario files — goes through this function, so there is exactly one
//! place that turns a traffic matrix into applications.

use rperf_fabric::{FabricBuilder, ShardedSim, Sim};
use rperf_model::ClusterConfig;
use rperf_sim::{RunOutcome, SimDuration, SimTime};
use rperf_stats::{json, LatencySummary};
use rperf_workloads::{build_workload, Bsg, ClosedLoopPing, PretendLsg, Sink, WorkloadRole};

use crate::perftest::{PerftestClient, PerftestConfig, PingPongServer};
use crate::qperf::{QperfClient, QperfConfig, QperfReport};
use crate::rperf_app::{RPerf, RPerfConfig, RPerfReport};
use crate::spec::{QosMode, Role, RoleSpec, ScenarioSpec};

/// What one role measured.
#[derive(Debug, Clone)]
pub enum RoleReport {
    /// An RPerf instance's switch-RTT distribution.
    RPerf(RPerfReport),
    /// An application-level RTT distribution (LSG ping or perftest).
    Latency(LatencySummary),
    /// What qperf reports (average only).
    Qperf(QperfReport),
    /// A BSG's goodput in Gbps over the measurement window.
    BsgGbps(f64),
    /// The pretend LSG's goodput in Gbps.
    PretendGbps(f64),
    /// Messages the sink delivered.
    Sink {
        /// Delivery count over the whole run.
        recvs: u64,
    },
    /// A passive server with nothing to report.
    Server,
}

impl RoleReport {
    fn kind_name(&self) -> &'static str {
        match self {
            RoleReport::RPerf(_) => "rperf",
            RoleReport::Latency(_) => "latency",
            RoleReport::Qperf(_) => "qperf",
            RoleReport::BsgGbps(_) => "bsg",
            RoleReport::PretendGbps(_) => "pretend_lsg",
            RoleReport::Sink { .. } => "sink",
            RoleReport::Server => "server",
        }
    }
}

/// Everything one scenario run measured, in role-table order.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The spec's name.
    pub name: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// When the run stopped (warm-up + measurement window).
    pub end: SimTime,
    /// One report per role, keyed by node, in spec order.
    pub reports: Vec<(usize, RoleReport)>,
}

impl ScenarioOutcome {
    fn report_of(&self, node: usize) -> Option<&RoleReport> {
        self.reports
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, r)| r)
    }

    /// The RPerf report of the instance on `node`, if one ran there.
    pub fn rperf(&self, node: usize) -> Option<&RPerfReport> {
        match self.report_of(node) {
            Some(RoleReport::RPerf(r)) => Some(r),
            _ => None,
        }
    }

    /// The RTT summary measured on `node` (LSG ping or perftest client).
    pub fn latency(&self, node: usize) -> Option<&LatencySummary> {
        match self.report_of(node) {
            Some(RoleReport::Latency(s)) => Some(s),
            _ => None,
        }
    }

    /// The qperf report of the client on `node`.
    pub fn qperf(&self, node: usize) -> Option<&QperfReport> {
        match self.report_of(node) {
            Some(RoleReport::Qperf(r)) => Some(r),
            _ => None,
        }
    }

    /// The goodput of the generator (BSG or pretend LSG) on `node`.
    pub fn gbps(&self, node: usize) -> Option<f64> {
        match self.report_of(node) {
            Some(RoleReport::BsgGbps(g)) | Some(RoleReport::PretendGbps(g)) => Some(*g),
            _ => None,
        }
    }

    /// Messages delivered to the sink on `node`.
    pub fn recvs(&self, node: usize) -> Option<u64> {
        match self.report_of(node) {
            Some(RoleReport::Sink { recvs }) => Some(*recvs),
            _ => None,
        }
    }

    /// Serializes the outcome through the deterministic JSON writer: the
    /// bytes are a pure function of the measurements.
    pub fn to_json(&self) -> String {
        let summary_json = |s: &LatencySummary| {
            json::object([
                ("count", json::uint(s.count)),
                ("min_ps", json::uint(s.min_ps)),
                ("mean_ps", json::num(s.mean_ps)),
                ("p50_ps", json::uint(s.p50_ps)),
                ("p90_ps", json::uint(s.p90_ps)),
                ("p99_ps", json::uint(s.p99_ps)),
                ("p999_ps", json::uint(s.p999_ps)),
                ("max_ps", json::uint(s.max_ps)),
            ])
        };
        let reports = self.reports.iter().map(|(node, r)| {
            let mut fields = vec![
                ("node", json::uint(*node as u64)),
                ("kind", json::string(r.kind_name())),
            ];
            match r {
                RoleReport::RPerf(rep) => {
                    fields.push(("rtt_ps", summary_json(&rep.summary)));
                    fields.push(("iterations", json::uint(rep.iterations)));
                    fields.push(("inversions", json::uint(rep.inversions)));
                }
                RoleReport::Latency(s) => fields.push(("rtt_ps", summary_json(s))),
                RoleReport::Qperf(rep) => {
                    fields.push(("avg_us", json::num(rep.avg_us)));
                    fields.push(("iterations", json::uint(rep.iterations)));
                }
                RoleReport::BsgGbps(g) | RoleReport::PretendGbps(g) => {
                    fields.push(("gbps", json::num(*g)));
                }
                RoleReport::Sink { recvs } => fields.push(("recvs", json::uint(*recvs))),
                RoleReport::Server => {}
            }
            json::object(fields)
        });
        json::object([
            ("scenario", json::string(&self.name)),
            ("seed", json::uint(self.seed)),
            ("end_ps", json::uint(self.end.as_ps())),
            ("reports", json::array(reports)),
        ])
    }
}

/// Builds the application for one role.
fn build_app(spec: &ScenarioSpec, r: &RoleSpec, seed: u64) -> Box<dyn rperf_fabric::App> {
    let sl = r.role.resolved_sl(spec.qos);
    match &r.role {
        Role::RPerf {
            target,
            payload,
            seed_salt,
            ..
        } => Box::new(RPerf::new(
            RPerfConfig::new(*target)
                .with_payload(*payload)
                .with_sl(sl)
                .with_warmup(spec.warmup)
                .with_seed(seed ^ *seed_salt),
        )),
        Role::Lsg {
            target, payload, ..
        } => build_workload(
            &WorkloadRole::Lsg {
                target: *target,
                payload: *payload,
                sl,
            },
            spec.warmup,
        ),
        Role::Bsg {
            target,
            payload,
            window,
            batch,
            ..
        } => build_workload(
            &WorkloadRole::Bsg {
                target: *target,
                payload: *payload,
                window: *window,
                batch: *batch,
                sl,
            },
            spec.warmup,
        ),
        Role::PretendLsg { target, chunk, .. } => build_workload(
            &WorkloadRole::PretendLsg {
                target: *target,
                chunk: *chunk,
                sl,
            },
            spec.warmup,
        ),
        Role::Perftest { peer, payload } => Box::new(PerftestClient::new(
            PerftestConfig::new(*peer)
                .with_payload(*payload)
                .with_warmup(spec.warmup),
        )),
        Role::PerftestServer { peer, payload } => Box::new(PingPongServer::new(
            PerftestConfig::new(*peer)
                .with_payload(*payload)
                .with_warmup(spec.warmup),
        )),
        Role::Qperf { peer, payload } => Box::new(QperfClient::new(
            QperfConfig::new(*peer)
                .with_payload(*payload)
                .with_warmup(spec.warmup),
        )),
        Role::Sink => build_workload(&WorkloadRole::Sink, spec.warmup),
    }
}

/// The execution engine behind one scenario run: the sequential
/// single-queue engine at `shards = 1`, the conservative-lookahead
/// sharded engine ([`ShardedSim`], DESIGN.md §3) otherwise. The two
/// produce identical results by construction — the differential suite
/// in `tests/sharded_differential.rs` holds them to byte-identity on
/// every golden figure — so the choice is purely a wall-clock knob.
enum Engine {
    Seq(Box<Sim>),
    Sharded(ShardedSim),
}

impl Engine {
    fn add_app(&mut self, node: usize, app: Box<dyn rperf_fabric::App>) {
        match self {
            Engine::Seq(sim) => sim.add_app(node, app),
            Engine::Sharded(sim) => sim.add_app(node, app),
        }
    }

    fn start(&mut self) {
        match self {
            Engine::Seq(sim) => sim.start(),
            Engine::Sharded(sim) => sim.start(),
        }
    }

    fn run_until_budgeted(
        &mut self,
        t: SimTime,
        max_events: u64,
        check_every: u64,
        cancelled: &mut dyn FnMut() -> bool,
    ) -> RunOutcome {
        match self {
            Engine::Seq(sim) => sim.run_until_budgeted(t, max_events, check_every, cancelled),
            Engine::Sharded(sim) => sim.run_until_budgeted(t, max_events, check_every, cancelled),
        }
    }

    fn events_processed(&self) -> u64 {
        match self {
            Engine::Seq(sim) => sim.events_processed(),
            Engine::Sharded(sim) => sim.events_processed(),
        }
    }

    fn app_as<T: rperf_fabric::App + 'static>(&self, node: usize) -> &T {
        match self {
            Engine::Seq(sim) => sim.app_as(node),
            Engine::Sharded(sim) => sim.app_as(node),
        }
    }
}

/// Reads the report of one role back out of the finished simulation.
fn collect(sim: &Engine, r: &RoleSpec, end: SimTime) -> RoleReport {
    match &r.role {
        Role::RPerf { .. } => RoleReport::RPerf(sim.app_as::<RPerf>(r.node).report()),
        Role::Lsg { .. } => RoleReport::Latency(LatencySummary::from_histogram(
            sim.app_as::<ClosedLoopPing>(r.node).histogram(),
        )),
        Role::Bsg { .. } => RoleReport::BsgGbps(sim.app_as::<Bsg>(r.node).gbps_until(end.as_ps())),
        Role::PretendLsg { .. } => RoleReport::PretendGbps(
            sim.app_as::<PretendLsg>(r.node)
                .bsg()
                .gbps_until(end.as_ps()),
        ),
        Role::Perftest { .. } => {
            RoleReport::Latency(sim.app_as::<PerftestClient>(r.node).summary())
        }
        Role::PerftestServer { .. } => RoleReport::Server,
        Role::Qperf { .. } => RoleReport::Qperf(sim.app_as::<QperfClient>(r.node).report()),
        Role::Sink => RoleReport::Sink {
            recvs: sim.app_as::<Sink>(r.node).recvs(),
        },
    }
}

/// Hard caps on one scenario execution, for callers that cannot afford an
/// unbounded run (the serving layer enforces per-request deadlines).
///
/// `max_events` bounds simulated work; `cancelled` is polled every
/// `check_every` events and may consult any external signal — wall-clock
/// deadlines, shutdown flags — without that signal leaking into the
/// deterministic engine. An execution that is never interrupted produces a
/// [`ScenarioOutcome`] bit-identical to [`execute`]'s.
pub struct ExecBudget<'a> {
    /// Maximum simulated events to process (`u64::MAX` = unbounded).
    pub max_events: u64,
    /// How many events to process between cancellation checks.
    pub check_every: u64,
    /// Cooperative cancellation hook; `true` aborts the run.
    pub cancelled: Option<&'a mut dyn FnMut() -> bool>,
}

impl std::fmt::Debug for ExecBudget<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecBudget")
            .field("max_events", &self.max_events)
            .field("check_every", &self.check_every)
            .field("cancelled", &self.cancelled.is_some())
            .finish()
    }
}

impl ExecBudget<'_> {
    /// A budget that never interrupts (what [`execute`] runs under).
    pub fn unbounded() -> Self {
        ExecBudget {
            max_events: u64::MAX,
            check_every: 8192,
            cancelled: None,
        }
    }

    /// Caps simulated work at `max_events`.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }
}

/// Why a budgeted execution stopped before the scenario's time horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecInterrupt {
    /// The simulated-event budget ran out.
    EventBudget {
        /// Events processed before the budget ran out.
        events: u64,
    },
    /// The cancellation hook fired (deadline, shutdown, ...).
    Cancelled {
        /// Events processed before cancellation.
        events: u64,
    },
}

impl std::fmt::Display for ExecInterrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecInterrupt::EventBudget { events } => {
                write!(f, "event budget exhausted after {events} events")
            }
            ExecInterrupt::Cancelled { events } => {
                write!(f, "cancelled after {events} events")
            }
        }
    }
}

/// Runs a scenario with the configuration derived from its device
/// profile and scheduling policy.
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`] — callers taking
/// untrusted input (the CLI) validate first and report the error.
pub fn execute(spec: &ScenarioSpec, seed: u64) -> ScenarioOutcome {
    execute_with_config(
        spec,
        spec.profile.cluster_config().with_policy(spec.policy),
        seed,
    )
}

/// Runs a scenario under an [`ExecBudget`]; the profile/policy handling
/// matches [`execute`].
///
/// Returns `Err` if the budget interrupted the run (the partial simulation
/// is discarded — determinism means a retry under a larger budget
/// reproduces the prefix exactly, so there is nothing worth salvaging).
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`].
pub fn execute_budgeted(
    spec: &ScenarioSpec,
    seed: u64,
    budget: ExecBudget<'_>,
) -> Result<ScenarioOutcome, ExecInterrupt> {
    execute_budgeted_with_config(
        spec,
        spec.profile.cluster_config().with_policy(spec.policy),
        seed,
        budget,
    )
}

/// Runs a scenario against an explicit cluster configuration (ablations
/// and extension studies mutate device parameters directly; the spec's
/// `profile` and `policy` fields are ignored here).
///
/// The QoS mode still applies: a non-shared mode installs the dedicated
/// SL1→VL1 tables on top of `cfg`, and every pretend-LSG node gets the
/// adversary's hot posting engine (65 ns WQE engine) as an RNIC override.
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`].
pub fn execute_with_config(spec: &ScenarioSpec, cfg: ClusterConfig, seed: u64) -> ScenarioOutcome {
    match execute_budgeted_with_config(spec, cfg, seed, ExecBudget::unbounded()) {
        Ok(out) => out,
        Err(i) => unreachable!("unbounded budget interrupted: {i}"),
    }
}

/// Runs a scenario against an explicit cluster configuration under an
/// [`ExecBudget`]; see [`execute_with_config`] for the configuration
/// semantics and [`execute_budgeted`] for the budget semantics.
///
/// # Panics
///
/// Panics if the spec fails [`ScenarioSpec::validate`].
pub fn execute_budgeted_with_config(
    spec: &ScenarioSpec,
    cfg: ClusterConfig,
    seed: u64,
    budget: ExecBudget<'_>,
) -> Result<ScenarioOutcome, ExecInterrupt> {
    if let Err(msg) = spec.validate() {
        panic!("invalid scenario `{}`: {msg}", spec.name);
    }
    let mut cfg = cfg;
    if spec.qos != QosMode::SharedSl {
        cfg = cfg.with_dedicated_sl();
    }
    let mut builder = FabricBuilder::new(cfg.clone(), seed);
    for r in &spec.roles {
        if matches!(r.role, Role::PretendLsg { .. }) {
            // The adversary optimizes its posting path (multiple QPs plus
            // aggressive doorbell batching); modelled as a faster WQE
            // engine.
            let mut hot = cfg.rnic.clone();
            hot.wqe_engine = SimDuration::from_ns(65);
            builder = builder.with_rnic_override(r.node, hot);
        }
    }
    let fabric = builder.build(&spec.topology);
    let mut sim = if spec.shards > 1 {
        Engine::Sharded(ShardedSim::new(fabric, spec.shards))
    } else {
        Engine::Seq(Box::new(Sim::new(fabric)))
    };
    for r in &spec.roles {
        sim.add_app(r.node, build_app(spec, r, seed));
    }
    sim.start();
    let end = SimTime::ZERO + spec.warmup + spec.duration;
    let mut never = || false;
    let cancelled = budget.cancelled.unwrap_or(&mut never);
    let outcome = sim.run_until_budgeted(end, budget.max_events, budget.check_every, cancelled);
    match outcome {
        RunOutcome::HorizonReached | RunOutcome::QueueDrained => {}
        RunOutcome::BudgetExhausted => {
            return Err(ExecInterrupt::EventBudget {
                events: sim.events_processed(),
            })
        }
        RunOutcome::Cancelled => {
            return Err(ExecInterrupt::Cancelled {
                events: sim.events_processed(),
            })
        }
    }
    let reports = spec
        .roles
        .iter()
        .map(|r| (r.node, collect(&sim, r, end)))
        .collect();
    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        seed,
        end,
        reports,
    })
}

/// Renders every switch's programmed forwarding table as deterministic
/// text — ascending switch index, ascending LID within each switch.
///
/// Builds the same fabric [`execute`] would (profile, policy and QoS
/// applied) but attaches no applications and runs nothing, so a spec
/// needs only a topology: roles are irrelevant to routing and are not
/// validated here. The output is stable across runs, `--jobs` and
/// `--shards` — routing is computed by the deterministic subnet planner,
/// never discovered at run time.
pub fn dump_routes(spec: &ScenarioSpec, seed: u64) -> String {
    let mut cfg = spec.profile.cluster_config().with_policy(spec.policy);
    if spec.qos != QosMode::SharedSl {
        cfg = cfg.with_dedicated_sl();
    }
    let fabric = FabricBuilder::new(cfg, seed).build(&spec.topology);
    let mut text = format!(
        "scenario {}  hosts={}  switches={}",
        spec.name,
        fabric.nodes(),
        fabric.switches_len(),
    );
    if fabric.switches_len() == 0 {
        text.push_str("\n(no switches: the hosts are cabled back-to-back)");
        return text;
    }
    for idx in 0..fabric.switches_len() {
        let fwd = fabric.switch(idx).forwarding();
        text.push_str(&format!("\nswitch {idx}  entries={}", fwd.len()));
        for (lid, port) in fwd.entries() {
            text.push_str(&format!("\n  {lid} -> {port}"));
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceProfile, SlSpec};
    use rperf_fabric::Topology;

    fn probe_spec() -> ScenarioSpec {
        ScenarioSpec::new("probe", Topology::SingleSwitch { hosts: 2 })
            .with_profile(DeviceProfile::Hardware)
            .with_window(SimDuration::from_us(50), SimDuration::from_us(500))
            .with_role(
                0,
                Role::RPerf {
                    target: 1,
                    payload: 64,
                    sl: SlSpec::Auto,
                    seed_salt: 0xA5A5,
                },
            )
            .with_role(1, Role::Sink)
    }

    #[test]
    fn executes_a_probe_scenario() {
        let out = execute(&probe_spec(), 1);
        let rep = out.rperf(0).expect("rperf report on node 0");
        assert!(rep.iterations > 50, "iterations {}", rep.iterations);
        assert!(out.recvs(1).expect("sink report") > 0);
        assert_eq!(out.end, SimTime::ZERO + SimDuration::from_us(550));
    }

    #[test]
    fn outcome_serializes_deterministically() {
        let a = execute(&probe_spec(), 7).to_json();
        let b = execute(&probe_spec(), 7).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"scenario\":\"probe\""), "{a}");
        assert!(a.contains("\"kind\":\"rperf\""), "{a}");
        assert!(a.contains("\"kind\":\"sink\""), "{a}");
    }

    #[test]
    fn budgeted_run_matches_unbudgeted_byte_for_byte() {
        let plain = execute(&probe_spec(), 5).to_json();
        let budgeted = execute_budgeted(&probe_spec(), 5, ExecBudget::unbounded())
            .expect("unbounded budget never interrupts")
            .to_json();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn event_budget_interrupts_long_runs() {
        let err = execute_budgeted(
            &probe_spec(),
            5,
            ExecBudget::unbounded().with_max_events(1000),
        )
        .expect_err("1000 events cannot finish a 550 us scenario");
        match err {
            ExecInterrupt::EventBudget { events } => assert!(events <= 1000, "events {events}"),
            other => panic!("expected EventBudget, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_hook_interrupts_runs() {
        let mut polls = 0u64;
        let mut hook = || {
            polls += 1;
            polls > 2
        };
        let budget = ExecBudget {
            max_events: u64::MAX,
            check_every: 64,
            cancelled: Some(&mut hook),
        };
        let err = execute_budgeted(&probe_spec(), 5, budget).expect_err("hook fires");
        match err {
            ExecInterrupt::Cancelled { events } => assert!(events <= 128, "events {events}"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn invalid_specs_are_rejected() {
        let bad = ScenarioSpec::new("bad", Topology::DirectPair).with_role(9, Role::Sink);
        let _ = execute(&bad, 1);
    }

    #[test]
    fn dump_routes_lists_every_switch_in_order() {
        use rperf_subnet::FatTreeParams;
        // k=4 three-tier Clos: 16 hosts, 20 switches, roles not required.
        let ft = FatTreeParams::new(4, 3, 1);
        let spec = ScenarioSpec::new("clos", Topology::FatTree(ft));
        let text = dump_routes(&spec, 1);
        assert!(
            text.starts_with("scenario clos  hosts=16  switches=20"),
            "{text}"
        );
        // Every switch appears once, in ascending order, with a full table.
        for idx in 0..20 {
            assert!(
                text.contains(&format!("\nswitch {idx}  entries=16")),
                "{text}"
            );
        }
        // Entries are ascending LIDs mapped to planner ports.
        let edge0 = text
            .split("switch 0  entries=16")
            .nth(1)
            .unwrap()
            .split("switch 1")
            .next()
            .unwrap();
        assert!(edge0.contains("lid1 -> port0"), "{edge0}");
        assert!(edge0.contains("lid2 -> port1"), "{edge0}");
        // The dump is deterministic.
        assert_eq!(text, dump_routes(&spec, 1));

        // Switchless topologies say so instead of printing nothing.
        let pair = ScenarioSpec::new("pair", Topology::DirectPair);
        let text = dump_routes(&pair, 1);
        assert!(text.contains("no switches"), "{text}");
    }
}
