//! Every experimental setup in the paper's evaluation, as runnable
//! scenarios.
//!
//! Each function builds the fabric, attaches the right applications,
//! warms up, runs for the requested measurement window and returns the
//! data points the corresponding figure plots. The figure harness in
//! `rperf-bench` sweeps parameters and averages over seeds (the paper
//! averages three runs).

use rperf_fabric::{Fabric, FabricBuilder, Sim};
use rperf_model::config::SchedPolicy;
use rperf_model::{ClusterConfig, ServiceLevel};
use rperf_sim::{SimDuration, SimTime};
use rperf_stats::LatencySummary;
use rperf_workloads::{Bsg, BsgConfig, PretendLsg, Sink};

use crate::perftest::{PerftestClient, PerftestConfig, PingPongServer};
use crate::qperf::{QperfClient, QperfConfig, QperfReport};
use crate::rperf_app::{RPerf, RPerfConfig, RPerfReport};

/// Shared run parameters.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cluster configuration (device profile, policies, QoS tables).
    pub cfg: ClusterConfig,
    /// Warm-up horizon: samples and bandwidth before this are discarded.
    pub warmup: SimDuration,
    /// Measurement window after warm-up.
    pub duration: SimDuration,
    /// Experiment seed.
    pub seed: u64,
}

impl RunSpec {
    /// A spec with the given configuration and sensible defaults
    /// (200 µs warm-up, 5 ms measurement).
    pub fn new(cfg: ClusterConfig) -> Self {
        RunSpec {
            cfg,
            warmup: SimDuration::from_us(200),
            duration: SimDuration::from_ms(5),
            seed: 1,
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the measurement window (builder style).
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    fn end(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.duration
    }
}

/// QoS configuration of the converged scenarios (Section VII–VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosMode {
    /// Everything shares SL0/VL0 (Section VII).
    SharedSl,
    /// LSG traffic on SL1 → high-priority VL1 (Section VIII-C).
    DedicatedSl,
    /// Dedicated SL plus a bandwidth hog gaming the latency class
    /// (Section VIII-C, "Gaming the dedicated SL/VL setup").
    DedicatedSlWithPretend,
}

/// Outcome of a converged-traffic run.
#[derive(Debug, Clone)]
pub struct ConvergedOutcome {
    /// The LSG's RTT distribution measured by RPerf (absent if no LSG ran).
    pub lsg: Option<RPerfReport>,
    /// Goodput of each ordinary BSG, in Gbps.
    pub per_bsg_gbps: Vec<f64>,
    /// Goodput of the pretend LSG (gaming runs only).
    pub pretend_gbps: Option<f64>,
    /// Aggregate source goodput in Gbps.
    pub total_gbps: f64,
}

/// Fig. 4 data: the RTT measured by RPerf, one-to-one, with or without
/// the switch.
pub fn one_to_one_rperf(spec: &RunSpec, through_switch: bool, payload: u64) -> RPerfReport {
    let fabric = if through_switch {
        Fabric::single_switch(spec.cfg.clone(), 2, spec.seed)
    } else {
        Fabric::direct_pair(spec.cfg.clone(), spec.seed)
    };
    let mut sim = Sim::new(fabric);
    sim.add_app(
        0,
        Box::new(RPerf::new(
            RPerfConfig::new(1)
                .with_payload(payload)
                .with_warmup(spec.warmup)
                .with_seed(spec.seed ^ 0xA5A5),
        )),
    );
    sim.add_app(1, Box::new(Sink::new()));
    sim.start();
    sim.run_until(spec.end());
    sim.app_as::<RPerf>(0).report()
}

/// Fig. 5 data: one-to-one BSG goodput in Gbps, with or without the
/// switch.
pub fn one_to_one_bandwidth(spec: &RunSpec, through_switch: bool, payload: u64) -> f64 {
    let fabric = if through_switch {
        Fabric::single_switch(spec.cfg.clone(), 2, spec.seed)
    } else {
        Fabric::direct_pair(spec.cfg.clone(), spec.seed)
    };
    let mut sim = Sim::new(fabric);
    sim.add_app(
        0,
        Box::new(Bsg::new(
            BsgConfig::new(1, payload).with_warmup(spec.warmup),
        )),
    );
    sim.add_app(1, Box::new(Sink::new()));
    sim.start();
    let end = spec.end();
    sim.run_until(end);
    sim.app_as::<Bsg>(0).gbps_until(end.as_ps())
}

/// Fig. 6 data (perftest side): end-to-end ping-pong RTT through the
/// switch.
pub fn one_to_one_perftest(spec: &RunSpec, payload: u64) -> LatencySummary {
    let mut sim = Sim::new(Fabric::single_switch(spec.cfg.clone(), 2, spec.seed));
    let client_cfg = PerftestConfig::new(1)
        .with_payload(payload)
        .with_warmup(spec.warmup);
    let mut server_cfg = client_cfg.clone();
    server_cfg.peer = 0;
    sim.add_app(0, Box::new(PerftestClient::new(client_cfg)));
    sim.add_app(1, Box::new(PingPongServer::new(server_cfg)));
    sim.start();
    sim.run_until(spec.end());
    sim.app_as::<PerftestClient>(0).summary()
}

/// Fig. 6 data (qperf side): post-poll WRITE RTT through the switch.
/// Returns what the tool reports (average only).
pub fn one_to_one_qperf(spec: &RunSpec, payload: u64) -> QperfReport {
    let mut sim = Sim::new(Fabric::single_switch(spec.cfg.clone(), 2, spec.seed));
    sim.add_app(
        0,
        Box::new(QperfClient::new(
            QperfConfig::new(1)
                .with_payload(payload)
                .with_warmup(spec.warmup),
        )),
    );
    sim.add_app(1, Box::new(Sink::new()));
    sim.start();
    sim.run_until(spec.end());
    sim.app_as::<QperfClient>(0).report()
}

/// The converged many-to-one scenario of Sections VII and VIII: `n_bsgs`
/// bandwidth flows (payload `bsg_payload`, doorbell batch `bsg_batch`)
/// plus optionally an RPerf-instrumented LSG, all targeting one
/// destination. `qos` selects the Section VIII-C configurations.
///
/// Node layout: BSGs first, then (gaming runs) the pretend LSG, then the
/// LSG, destination last — seven nodes in the paper's full setup.
pub fn converged(
    spec: &RunSpec,
    n_bsgs: usize,
    bsg_payload: u64,
    bsg_batch: usize,
    with_lsg: bool,
    qos: QosMode,
) -> ConvergedOutcome {
    let mut cfg = spec.cfg.clone();
    if qos != QosMode::SharedSl {
        cfg = cfg.with_dedicated_sl();
    }
    let pretend = qos == QosMode::DedicatedSlWithPretend;

    let n_nodes = n_bsgs + usize::from(pretend) + usize::from(with_lsg) + 1;
    let pretend_idx = n_bsgs; // valid when `pretend`
    let lsg_idx = n_bsgs + usize::from(pretend);
    let dest = n_nodes - 1;

    let mut builder = FabricBuilder::new(cfg.clone(), spec.seed);
    if pretend {
        // The adversary optimizes its posting path (multiple QPs plus
        // aggressive doorbell batching); modelled as a faster WQE engine.
        let mut hot = cfg.rnic.clone();
        hot.wqe_engine = SimDuration::from_ns(65);
        builder = builder.with_rnic_override(pretend_idx, hot);
    }
    let fabric = builder.single_switch(n_nodes);
    let mut sim = Sim::new(fabric);

    for b in 0..n_bsgs {
        sim.add_app(
            b,
            Box::new(Bsg::new(
                BsgConfig::new(dest, bsg_payload)
                    .with_batch(bsg_batch)
                    .with_warmup(spec.warmup),
            )),
        );
    }
    if pretend {
        sim.add_app(
            pretend_idx,
            Box::new(PretendLsg::new(
                dest,
                256,
                ServiceLevel::new(1),
                spec.warmup,
            )),
        );
    }
    if with_lsg {
        let sl = if qos == QosMode::SharedSl {
            ServiceLevel::new(0)
        } else {
            ServiceLevel::new(1)
        };
        sim.add_app(
            lsg_idx,
            Box::new(RPerf::new(
                RPerfConfig::new(dest)
                    .with_sl(sl)
                    .with_warmup(spec.warmup)
                    .with_seed(spec.seed ^ 0x15C),
            )),
        );
    }
    sim.add_app(dest, Box::new(Sink::new()));

    sim.start();
    let end = spec.end();
    sim.run_until(end);

    let per_bsg_gbps: Vec<f64> = (0..n_bsgs)
        .map(|b| sim.app_as::<Bsg>(b).gbps_until(end.as_ps()))
        .collect();
    let pretend_gbps = pretend.then(|| {
        sim.app_as::<PretendLsg>(pretend_idx)
            .bsg()
            .gbps_until(end.as_ps())
    });
    let lsg = with_lsg.then(|| sim.app_as::<RPerf>(lsg_idx).report());
    let total_gbps = per_bsg_gbps.iter().sum::<f64>() + pretend_gbps.unwrap_or(0.0);

    ConvergedOutcome {
        lsg,
        per_bsg_gbps,
        pretend_gbps,
        total_gbps,
    }
}

/// The multi-hop scenario of Fig. 11: two switches in series; two BSGs
/// and the LSG upstream, three BSGs downstream, destination downstream.
/// All BSGs send 4096-byte messages.
pub fn multihop(spec: &RunSpec, policy: SchedPolicy) -> ConvergedOutcome {
    let cfg = spec.cfg.clone().with_policy(policy);
    // Upstream: nodes 0,1 (BSG), 2 (LSG). Downstream: 3,4,5 (BSG), 6 (dest).
    let fabric = Fabric::two_switch(cfg, 3, 4, spec.seed);
    let dest = 6;
    let mut sim = Sim::new(fabric);
    for b in [0usize, 1, 3, 4, 5] {
        sim.add_app(
            b,
            Box::new(Bsg::new(
                BsgConfig::new(dest, 4096).with_warmup(spec.warmup),
            )),
        );
    }
    sim.add_app(
        2,
        Box::new(RPerf::new(
            RPerfConfig::new(dest)
                .with_warmup(spec.warmup)
                .with_seed(spec.seed ^ 0x2207),
        )),
    );
    sim.add_app(dest, Box::new(Sink::new()));
    sim.start();
    let end = spec.end();
    sim.run_until(end);

    let per_bsg_gbps: Vec<f64> = [0usize, 1, 3, 4, 5]
        .iter()
        .map(|&b| sim.app_as::<Bsg>(b).gbps_until(end.as_ps()))
        .collect();
    let total_gbps = per_bsg_gbps.iter().sum();
    ConvergedOutcome {
        lsg: Some(sim.app_as::<RPerf>(2).report()),
        per_bsg_gbps,
        pretend_gbps: None,
        total_gbps,
    }
}

/// Extension scenario: the LSG probes a destination across a *chain* of
/// `n_switches` switches (LSG on the first, destination on the last),
/// with `bsgs_at_tail` bulk flows local to the destination switch.
///
/// With `bsgs_at_tail = 0` this measures how the zero-load RTT grows per
/// hop (each switch adds its pipeline + arbitration latency twice per
/// round trip); with bulk traffic it shows that congestion at the last
/// hop dominates regardless of path length.
pub fn chain_latency(spec: &RunSpec, n_switches: usize, bsgs_at_tail: usize) -> RPerfReport {
    use rperf_subnet::TopologySpec;
    assert!(n_switches >= 1, "a chain needs at least one switch");
    let mut hosts = vec![0usize; n_switches];
    hosts[0] = 1; // the LSG
    hosts[n_switches - 1] += bsgs_at_tail + 1; // BSGs + destination
    let topo = TopologySpec::chain(n_switches, &hosts);
    let fabric = Fabric::from_spec(spec.cfg.clone(), &topo, spec.seed);
    let dest = fabric.nodes() - 1;
    let mut sim = Sim::new(fabric);
    sim.add_app(
        0,
        Box::new(RPerf::new(
            RPerfConfig::new(dest)
                .with_warmup(spec.warmup)
                .with_seed(spec.seed ^ 0xC4A1),
        )),
    );
    for b in 1..=bsgs_at_tail {
        sim.add_app(
            b,
            Box::new(Bsg::new(
                BsgConfig::new(dest, 4096).with_warmup(spec.warmup),
            )),
        );
    }
    sim.add_app(dest, Box::new(Sink::new()));
    sim.start();
    sim.run_until(spec.end());
    sim.app_as::<RPerf>(0).report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(cfg: ClusterConfig) -> RunSpec {
        RunSpec::new(cfg).with_duration(SimDuration::from_ms(2))
    }

    #[test]
    fn converged_lsg_latency_grows_with_bsgs() {
        let spec = quick_spec(ClusterConfig::hardware());
        let zero = converged(&spec, 0, 4096, 1, true, QosMode::SharedSl);
        let two = converged(&spec, 2, 4096, 1, true, QosMode::SharedSl);
        let five = converged(&spec, 5, 4096, 1, true, QosMode::SharedSl);
        let l0 = zero.lsg.unwrap().summary.p50_us();
        let l2 = two.lsg.unwrap().summary.p50_us();
        let l5 = five.lsg.unwrap().summary.p50_us();
        assert!(l0 < 1.0, "zero-load LSG should be sub-µs, got {l0:.2}");
        assert!(
            l2 > l0 + 2.0,
            "2 BSGs must hurt the LSG: {l2:.2} vs {l0:.2}"
        );
        assert!(l5 > l2 + 5.0, "5 BSGs must hurt more: {l5:.2} vs {l2:.2}");
    }

    #[test]
    fn converged_bandwidth_is_shared_fairly() {
        let spec = quick_spec(ClusterConfig::hardware());
        let out = converged(&spec, 3, 4096, 1, false, QosMode::SharedSl);
        assert_eq!(out.per_bsg_gbps.len(), 3);
        let min = out.per_bsg_gbps.iter().cloned().fold(f64::MAX, f64::min);
        let max = out.per_bsg_gbps.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 3.0, "unfair shares: {:?}", out.per_bsg_gbps);
        assert!(
            (40.0..56.0).contains(&out.total_gbps),
            "total {:.1}",
            out.total_gbps
        );
    }

    #[test]
    fn chain_latency_grows_per_hop() {
        let spec = quick_spec(ClusterConfig::omnet_simulator());
        let one = chain_latency(&spec, 1, 0).summary.p50_ns();
        let three = chain_latency(&spec, 3, 0).summary.p50_ns();
        // Each extra switch adds its pipeline twice per RTT (~400 ns).
        let per_hop = (three - one) / 2.0;
        assert!(
            (300.0..600.0).contains(&per_hop),
            "per-hop RTT cost {per_hop:.0} ns (1 switch {one:.0}, 3 switches {three:.0})"
        );
    }

    #[test]
    fn chain_congestion_dominates_path_length() {
        let spec = quick_spec(ClusterConfig::omnet_simulator());
        let short_loaded = chain_latency(&spec, 1, 3).summary.p50_us();
        let long_loaded = chain_latency(&spec, 3, 3).summary.p50_us();
        // Both are dominated by the 3 tail BSGs' buffers, not the hops.
        assert!(short_loaded > 5.0);
        assert!(
            (long_loaded - short_loaded).abs() < 0.3 * short_loaded,
            "short {short_loaded:.1} vs long {long_loaded:.1}"
        );
    }

    #[test]
    fn dedicated_sl_protects_the_lsg() {
        let spec = quick_spec(ClusterConfig::hardware());
        let shared = converged(&spec, 5, 4096, 1, true, QosMode::SharedSl);
        let dedicated = converged(&spec, 5, 4096, 1, true, QosMode::DedicatedSl);
        let l_shared = shared.lsg.unwrap().summary.p50_us();
        let l_ded = dedicated.lsg.unwrap().summary.p50_us();
        assert!(
            l_ded < l_shared / 5.0,
            "dedicated SL must slash LSG latency: {l_ded:.2} vs {l_shared:.2}"
        );
        // And it must not cost aggregate bandwidth (paper take-away).
        assert!(
            (dedicated.total_gbps - shared.total_gbps).abs() < 5.0,
            "dedicated {:.1} vs shared {:.1}",
            dedicated.total_gbps,
            shared.total_gbps
        );
    }
}
