//! Every experimental setup in the paper's evaluation, as declarative
//! scenario tables.
//!
//! Each setup is a [`ScenarioSpec`] built by the constant tables in
//! [`specs`]; the wrappers in this module keep the historical function
//! signatures (a [`RunSpec`] in, the figure's data points out) and route
//! everything through the one generic executor
//! ([`crate::executor::execute_with_config`]). The figure harness in
//! `rperf-bench` sweeps parameters and averages over seeds (the paper
//! averages three runs).

use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;
use rperf_stats::LatencySummary;

use crate::executor::{execute_with_config, ScenarioOutcome};
use crate::qperf::QperfReport;
use crate::rperf_app::RPerfReport;
use crate::spec::ScenarioSpec;

pub use crate::spec::QosMode;

/// Shared run parameters.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cluster configuration (device profile, policies, QoS tables).
    pub cfg: ClusterConfig,
    /// Warm-up horizon: samples and bandwidth before this are discarded.
    pub warmup: SimDuration,
    /// Measurement window after warm-up.
    pub duration: SimDuration,
    /// Experiment seed.
    pub seed: u64,
}

impl RunSpec {
    /// A spec with the given configuration and sensible defaults
    /// (200 µs warm-up, 5 ms measurement).
    pub fn new(cfg: ClusterConfig) -> Self {
        RunSpec {
            cfg,
            warmup: SimDuration::from_us(200),
            duration: SimDuration::from_ms(5),
            seed: 1,
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the measurement window (builder style).
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Runs a scenario table under this run's configuration, window and
    /// seed — the one execution path shared by every wrapper below.
    fn run(&self, table: ScenarioSpec) -> ScenarioOutcome {
        execute_with_config(
            &table.with_window(self.warmup, self.duration),
            self.cfg.clone(),
            self.seed,
        )
    }
}

/// Outcome of a converged-traffic run.
#[derive(Debug, Clone)]
pub struct ConvergedOutcome {
    /// The LSG's RTT distribution measured by RPerf (absent if no LSG ran).
    pub lsg: Option<RPerfReport>,
    /// Goodput of each ordinary BSG, in Gbps.
    pub per_bsg_gbps: Vec<f64>,
    /// Goodput of the pretend LSG (gaming runs only).
    pub pretend_gbps: Option<f64>,
    /// Aggregate source goodput in Gbps.
    pub total_gbps: f64,
}

/// Collapses a scenario outcome into the converged-figure shape: BSG
/// goodputs in role order, the pretend LSG and RPerf reports if present,
/// and the aggregate.
pub fn converged_outcome(out: &ScenarioOutcome) -> ConvergedOutcome {
    use crate::executor::RoleReport;
    let mut lsg = None;
    let mut per_bsg_gbps = Vec::new();
    let mut pretend_gbps = None;
    for (_, report) in &out.reports {
        match report {
            RoleReport::BsgGbps(g) => per_bsg_gbps.push(*g),
            RoleReport::PretendGbps(g) => pretend_gbps = Some(*g),
            RoleReport::RPerf(r) => lsg = Some(r.clone()),
            _ => {}
        }
    }
    let total_gbps = per_bsg_gbps.iter().sum::<f64>() + pretend_gbps.unwrap_or(0.0);
    ConvergedOutcome {
        lsg,
        per_bsg_gbps,
        pretend_gbps,
        total_gbps,
    }
}

/// The paper's experimental setups as plain-data scenario tables.
///
/// Each function returns a [`ScenarioSpec`] with the suite's default run
/// window; callers pick warm-up, measurement window, configuration and
/// seed at execution time. The node layouts, service levels and RPerf
/// seed salts reproduce the historical hand-coded setups exactly (the
/// golden figure test in `rperf-bench` pins this byte-for-byte).
pub mod specs {
    use rperf_fabric::Topology;
    use rperf_model::config::SchedPolicy;
    use rperf_subnet::TopologySpec;

    use crate::spec::{QosMode, Role, ScenarioSpec, SlSpec};

    /// Fig. 4: RPerf one-to-one, with or without the switch.
    pub fn one_to_one_rperf(through_switch: bool, payload: u64) -> ScenarioSpec {
        let topology = if through_switch {
            Topology::SingleSwitch { hosts: 2 }
        } else {
            Topology::DirectPair
        };
        ScenarioSpec::new("one-to-one-rperf", topology)
            .with_role(
                0,
                Role::RPerf {
                    target: 1,
                    payload,
                    sl: SlSpec::Auto,
                    seed_salt: 0xA5A5,
                },
            )
            .with_role(1, Role::Sink)
    }

    /// Fig. 5: one BSG's goodput, with or without the switch.
    pub fn one_to_one_bandwidth(through_switch: bool, payload: u64) -> ScenarioSpec {
        let topology = if through_switch {
            Topology::SingleSwitch { hosts: 2 }
        } else {
            Topology::DirectPair
        };
        ScenarioSpec::new("one-to-one-bandwidth", topology)
            .with_role(
                0,
                Role::Bsg {
                    target: 1,
                    payload,
                    window: 128,
                    batch: 1,
                    sl: SlSpec::Auto,
                },
            )
            .with_role(1, Role::Sink)
    }

    /// Fig. 6 (perftest side): software ping-pong through the switch.
    pub fn one_to_one_perftest(payload: u64) -> ScenarioSpec {
        ScenarioSpec::new("one-to-one-perftest", Topology::SingleSwitch { hosts: 2 })
            .with_role(0, Role::Perftest { peer: 1, payload })
            .with_role(1, Role::PerftestServer { peer: 0, payload })
    }

    /// Fig. 6 (qperf side): post-poll WRITE through the switch.
    pub fn one_to_one_qperf(payload: u64) -> ScenarioSpec {
        ScenarioSpec::new("one-to-one-qperf", Topology::SingleSwitch { hosts: 2 })
            .with_role(0, Role::Qperf { peer: 1, payload })
            .with_role(1, Role::Sink)
    }

    /// The converged many-to-one setup of Sections VII and VIII: `n_bsgs`
    /// bandwidth flows plus optionally an RPerf-instrumented LSG, all
    /// targeting one destination; `qos` selects the Section VIII-C
    /// configurations (a gamed setup adds the pretend LSG).
    ///
    /// Node layout: BSGs first, then (gaming runs) the pretend LSG, then
    /// the LSG, destination last — seven nodes in the paper's full setup.
    pub fn converged(
        n_bsgs: usize,
        bsg_payload: u64,
        bsg_batch: usize,
        with_lsg: bool,
        qos: QosMode,
    ) -> ScenarioSpec {
        let pretend = qos == QosMode::DedicatedSlWithPretend;
        let n_nodes = n_bsgs + usize::from(pretend) + usize::from(with_lsg) + 1;
        let dest = n_nodes - 1;
        let mut spec =
            ScenarioSpec::new("converged", Topology::SingleSwitch { hosts: n_nodes }).with_qos(qos);
        for b in 0..n_bsgs {
            spec = spec.with_role(
                b,
                Role::Bsg {
                    target: dest,
                    payload: bsg_payload,
                    window: 128,
                    batch: bsg_batch,
                    sl: SlSpec::Auto,
                },
            );
        }
        if pretend {
            spec = spec.with_role(
                n_bsgs,
                Role::PretendLsg {
                    target: dest,
                    chunk: 256,
                    sl: SlSpec::Auto,
                },
            );
        }
        if with_lsg {
            spec = spec.with_role(
                n_bsgs + usize::from(pretend),
                Role::RPerf {
                    target: dest,
                    payload: 64,
                    sl: SlSpec::Auto,
                    seed_salt: 0x15C,
                },
            );
        }
        spec.with_role(dest, Role::Sink)
    }

    /// The multi-hop setup of Fig. 11: two switches in series; two BSGs
    /// and the LSG upstream, three BSGs downstream, destination
    /// downstream. All BSGs send 4096-byte messages.
    pub fn multihop(policy: SchedPolicy) -> ScenarioSpec {
        let dest = 6;
        let mut spec = ScenarioSpec::new(
            "multihop",
            Topology::TwoSwitch {
                upstream: 3,
                downstream: 4,
            },
        )
        .with_policy(policy);
        for b in [0usize, 1, 3, 4, 5] {
            spec = spec.with_role(
                b,
                Role::Bsg {
                    target: dest,
                    payload: 4096,
                    window: 128,
                    batch: 1,
                    sl: SlSpec::Auto,
                },
            );
        }
        spec.with_role(
            2,
            Role::RPerf {
                target: dest,
                payload: 64,
                sl: SlSpec::Auto,
                seed_salt: 0x2207,
            },
        )
        .with_role(dest, Role::Sink)
    }

    /// Extension setup: the LSG probes a destination across a *chain* of
    /// `n_switches` switches (LSG on the first, destination on the last),
    /// with `bsgs_at_tail` bulk flows local to the destination switch.
    pub fn chain_latency(n_switches: usize, bsgs_at_tail: usize) -> ScenarioSpec {
        assert!(n_switches >= 1, "a chain needs at least one switch");
        let mut hosts = vec![0usize; n_switches];
        hosts[0] = 1; // the LSG
        hosts[n_switches - 1] += bsgs_at_tail + 1; // BSGs + destination
        let topo = TopologySpec::chain(n_switches, &hosts);
        let dest = topo.hosts() - 1;
        let mut spec = ScenarioSpec::new("chain-latency", Topology::Spec(topo)).with_role(
            0,
            Role::RPerf {
                target: dest,
                payload: 64,
                sl: SlSpec::Auto,
                seed_salt: 0xC4A1,
            },
        );
        for b in 1..=bsgs_at_tail {
            spec = spec.with_role(
                b,
                Role::Bsg {
                    target: dest,
                    payload: 4096,
                    window: 128,
                    batch: 1,
                    sl: SlSpec::Auto,
                },
            );
        }
        spec.with_role(dest, Role::Sink)
    }

    /// The Clos victim setup (`fig_clos`): an RPerf-instrumented victim
    /// flow crossing `hops` switches (1, 3 or 5) of a 3-tier `k = 4`
    /// fat-tree while `n_bsgs` bulk flows converge on the same
    /// destination from maximally remote edges (pod-aware placement via
    /// `rperf_workloads::incast_sources`). Probes whether the per-BSG
    /// latency slope measured through one switch stays additive across
    /// a routed multi-hop fabric.
    ///
    /// # Panics
    ///
    /// Panics if the fabric has no pair at `hops` or too few hosts for
    /// `n_bsgs` sources (the k = 4 tree offers 16 hosts).
    pub fn clos_victim(hops: u32, n_bsgs: usize) -> ScenarioSpec {
        let ft = rperf_subnet::FatTreeParams::new(4, 3, 1);
        let (src, dst) = rperf_workloads::pair_at_hops(&ft, hops)
            .unwrap_or_else(|| panic!("no host pair at {hops} hops in a k=4 fat-tree"));
        let mut spec = ScenarioSpec::new("clos-victim", Topology::FatTree(ft)).with_role(
            src,
            Role::RPerf {
                target: dst,
                payload: 64,
                sl: SlSpec::Auto,
                seed_salt: 0xC105,
            },
        );
        // Draw two spares so the victim source can be skipped without
        // shorting the BSG count.
        let sources = rperf_workloads::incast_sources(&ft, dst, n_bsgs + 2);
        for b in sources.into_iter().filter(|&h| h != src).take(n_bsgs) {
            spec = spec.with_role(
                b,
                Role::Bsg {
                    target: dst,
                    payload: 4096,
                    window: 128,
                    batch: 1,
                    sl: SlSpec::Auto,
                },
            );
        }
        spec.with_role(dst, Role::Sink)
    }

    /// Scale-out incast on an arbitrary fat-tree: `n_bsgs` bulk flows
    /// converge from maximally remote edges on the destination of a
    /// cross-fabric RPerf victim pair (maximum hop count for the tier
    /// count: 3 on a leaf–spine, 5 on a 3-tier Clos). `k = 8, tiers = 2,
    /// o = 2` is the 128-host leaf–spine the report's scale row runs.
    ///
    /// # Panics
    ///
    /// Panics on invalid fat-tree parameters or if the fabric has fewer
    /// than `n_bsgs + 2` hosts.
    pub fn fattree_incast(
        k: usize,
        tiers: usize,
        oversubscription: usize,
        n_bsgs: usize,
    ) -> ScenarioSpec {
        let ft = rperf_subnet::FatTreeParams::new(k, tiers, oversubscription);
        let hops = if tiers == 2 { 3 } else { 5 };
        let (src, dst) = rperf_workloads::pair_at_hops(&ft, hops)
            .unwrap_or_else(|| panic!("no {hops}-hop pair in a k={k} {tiers}-tier fat-tree"));
        let mut spec = ScenarioSpec::new("fattree-incast", Topology::FatTree(ft)).with_role(
            src,
            Role::RPerf {
                target: dst,
                payload: 64,
                sl: SlSpec::Auto,
                seed_salt: 0xF128,
            },
        );
        let sources = rperf_workloads::incast_sources(&ft, dst, n_bsgs + 2);
        for b in sources.into_iter().filter(|&h| h != src).take(n_bsgs) {
            spec = spec.with_role(
                b,
                Role::Bsg {
                    target: dst,
                    payload: 4096,
                    window: 128,
                    batch: 1,
                    sl: SlSpec::Auto,
                },
            );
        }
        spec.with_role(dst, Role::Sink)
    }
}

/// Fig. 4 data: the RTT measured by RPerf, one-to-one, with or without
/// the switch.
pub fn one_to_one_rperf(spec: &RunSpec, through_switch: bool, payload: u64) -> RPerfReport {
    spec.run(specs::one_to_one_rperf(through_switch, payload))
        .rperf(0)
        .expect("rperf role on node 0")
        .clone()
}

/// Fig. 5 data: one-to-one BSG goodput in Gbps, with or without the
/// switch.
pub fn one_to_one_bandwidth(spec: &RunSpec, through_switch: bool, payload: u64) -> f64 {
    spec.run(specs::one_to_one_bandwidth(through_switch, payload))
        .gbps(0)
        .expect("bsg role on node 0")
}

/// Fig. 6 data (perftest side): end-to-end ping-pong RTT through the
/// switch.
pub fn one_to_one_perftest(spec: &RunSpec, payload: u64) -> LatencySummary {
    *spec
        .run(specs::one_to_one_perftest(payload))
        .latency(0)
        .expect("perftest client on node 0")
}

/// Fig. 6 data (qperf side): post-poll WRITE RTT through the switch.
/// Returns what the tool reports (average only).
pub fn one_to_one_qperf(spec: &RunSpec, payload: u64) -> QperfReport {
    *spec
        .run(specs::one_to_one_qperf(payload))
        .qperf(0)
        .expect("qperf client on node 0")
}

/// The converged many-to-one scenario of Sections VII and VIII (see
/// [`specs::converged`] for the node layout).
pub fn converged(
    spec: &RunSpec,
    n_bsgs: usize,
    bsg_payload: u64,
    bsg_batch: usize,
    with_lsg: bool,
    qos: QosMode,
) -> ConvergedOutcome {
    converged_outcome(&spec.run(specs::converged(
        n_bsgs,
        bsg_payload,
        bsg_batch,
        with_lsg,
        qos,
    )))
}

/// The multi-hop scenario of Fig. 11 (see [`specs::multihop`]).
pub fn multihop(spec: &RunSpec, policy: SchedPolicy) -> ConvergedOutcome {
    let out = execute_with_config(
        &specs::multihop(policy).with_window(spec.warmup, spec.duration),
        spec.cfg.clone().with_policy(policy),
        spec.seed,
    );
    converged_outcome(&out)
}

/// Extension scenario: the LSG probes a destination across a *chain* of
/// `n_switches` switches, with `bsgs_at_tail` bulk flows local to the
/// destination switch (see [`specs::chain_latency`]).
///
/// With `bsgs_at_tail = 0` this measures how the zero-load RTT grows per
/// hop (each switch adds its pipeline + arbitration latency twice per
/// round trip); with bulk traffic it shows that congestion at the last
/// hop dominates regardless of path length.
pub fn chain_latency(spec: &RunSpec, n_switches: usize, bsgs_at_tail: usize) -> RPerfReport {
    spec.run(specs::chain_latency(n_switches, bsgs_at_tail))
        .rperf(0)
        .expect("rperf role on node 0")
        .clone()
}

/// Clos scale-out scenario: the victim's RPerf view at `hops` switch
/// crossings of a 3-tier fat-tree under `n_bsgs` converging bulk flows
/// (see [`specs::clos_victim`]).
pub fn clos_victim(spec: &RunSpec, hops: u32, n_bsgs: usize) -> RPerfReport {
    let table = specs::clos_victim(hops, n_bsgs);
    let src = table
        .roles
        .iter()
        .find(|r| matches!(r.role, crate::spec::Role::RPerf { .. }))
        .expect("clos_victim always places an RPerf role")
        .node;
    spec.run(table)
        .rperf(src)
        .expect("rperf report on the victim node")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(cfg: ClusterConfig) -> RunSpec {
        RunSpec::new(cfg).with_duration(SimDuration::from_ms(2))
    }

    #[test]
    fn converged_lsg_latency_grows_with_bsgs() {
        let spec = quick_spec(ClusterConfig::hardware());
        let zero = converged(&spec, 0, 4096, 1, true, QosMode::SharedSl);
        let two = converged(&spec, 2, 4096, 1, true, QosMode::SharedSl);
        let five = converged(&spec, 5, 4096, 1, true, QosMode::SharedSl);
        let l0 = zero.lsg.unwrap().summary.p50_us();
        let l2 = two.lsg.unwrap().summary.p50_us();
        let l5 = five.lsg.unwrap().summary.p50_us();
        assert!(l0 < 1.0, "zero-load LSG should be sub-µs, got {l0:.2}");
        assert!(
            l2 > l0 + 2.0,
            "2 BSGs must hurt the LSG: {l2:.2} vs {l0:.2}"
        );
        assert!(l5 > l2 + 5.0, "5 BSGs must hurt more: {l5:.2} vs {l2:.2}");
    }

    #[test]
    fn converged_bandwidth_is_shared_fairly() {
        let spec = quick_spec(ClusterConfig::hardware());
        let out = converged(&spec, 3, 4096, 1, false, QosMode::SharedSl);
        assert_eq!(out.per_bsg_gbps.len(), 3);
        let min = out.per_bsg_gbps.iter().cloned().fold(f64::MAX, f64::min);
        let max = out.per_bsg_gbps.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 3.0, "unfair shares: {:?}", out.per_bsg_gbps);
        assert!(
            (40.0..56.0).contains(&out.total_gbps),
            "total {:.1}",
            out.total_gbps
        );
    }

    #[test]
    fn chain_latency_grows_per_hop() {
        let spec = quick_spec(ClusterConfig::omnet_simulator());
        let one = chain_latency(&spec, 1, 0).summary.p50_ns();
        let three = chain_latency(&spec, 3, 0).summary.p50_ns();
        // Each extra switch adds its pipeline twice per RTT (~400 ns).
        let per_hop = (three - one) / 2.0;
        assert!(
            (300.0..600.0).contains(&per_hop),
            "per-hop RTT cost {per_hop:.0} ns (1 switch {one:.0}, 3 switches {three:.0})"
        );
    }

    #[test]
    fn chain_congestion_dominates_path_length() {
        let spec = quick_spec(ClusterConfig::omnet_simulator());
        let short_loaded = chain_latency(&spec, 1, 3).summary.p50_us();
        let long_loaded = chain_latency(&spec, 3, 3).summary.p50_us();
        // Both are dominated by the 3 tail BSGs' buffers, not the hops.
        assert!(short_loaded > 5.0);
        assert!(
            (long_loaded - short_loaded).abs() < 0.3 * short_loaded,
            "short {short_loaded:.1} vs long {long_loaded:.1}"
        );
    }

    #[test]
    fn dedicated_sl_protects_the_lsg() {
        let spec = quick_spec(ClusterConfig::hardware());
        let shared = converged(&spec, 5, 4096, 1, true, QosMode::SharedSl);
        let dedicated = converged(&spec, 5, 4096, 1, true, QosMode::DedicatedSl);
        let l_shared = shared.lsg.unwrap().summary.p50_us();
        let l_ded = dedicated.lsg.unwrap().summary.p50_us();
        assert!(
            l_ded < l_shared / 5.0,
            "dedicated SL must slash LSG latency: {l_ded:.2} vs {l_shared:.2}"
        );
        // And it must not cost aggregate bandwidth (paper take-away).
        assert!(
            (dedicated.total_gbps - shared.total_gbps).abs() < 5.0,
            "dedicated {:.1} vs shared {:.1}",
            dedicated.total_gbps,
            shared.total_gbps
        );
    }

    #[test]
    fn wrappers_match_direct_execution() {
        // The RunSpec wrappers and the raw executor must agree exactly.
        let spec = RunSpec::new(ClusterConfig::hardware())
            .with_duration(SimDuration::from_us(500))
            .with_seed(11);
        let wrapped = one_to_one_rperf(&spec, true, 256);
        let direct = crate::executor::execute_with_config(
            &specs::one_to_one_rperf(true, 256).with_window(spec.warmup, spec.duration),
            spec.cfg.clone(),
            spec.seed,
        );
        assert_eq!(
            wrapped.summary.p999_ps,
            direct.rperf(0).unwrap().summary.p999_ps
        );
        assert_eq!(wrapped.iterations, direct.rperf(0).unwrap().iterations);
    }

    #[test]
    fn clos_victim_places_roles_pod_aware() {
        // 1 hop: victim pair shares edge 0; 5 hops: crosses pods.
        for (hops, src, dst) in [(1, 0usize, 1usize), (3, 0, 2), (5, 0, 4)] {
            let table = specs::clos_victim(hops, 4);
            table.validate().unwrap();
            assert_eq!(table.topology.hosts(), 16);
            assert_eq!(table.topology.switches(), 20);
            let rperf = table
                .roles
                .iter()
                .find(
                    |r| matches!(r.role, crate::spec::Role::RPerf { target, .. } if target == dst),
                )
                .unwrap_or_else(|| panic!("victim {src}->{dst} missing at {hops} hops"));
            assert_eq!(rperf.node, src);
            let bsgs = table
                .roles
                .iter()
                .filter(
                    |r| matches!(r.role, crate::spec::Role::Bsg { target, .. } if target == dst),
                )
                .count();
            assert_eq!(bsgs, 4, "exactly n_bsgs bulk flows at {hops} hops");
        }
    }

    #[test]
    fn clos_victim_latency_reflects_converging_load() {
        // A short end-to-end run across the routed fat-tree: the victim
        // completes probes at every depth, and adding bulk flows at 5
        // hops cannot make it faster.
        let spec = RunSpec::new(ClusterConfig::hardware())
            .with_duration(SimDuration::from_us(500))
            .with_seed(3);
        let quiet = clos_victim(&spec, 5, 0);
        assert!(quiet.iterations > 0, "victim must complete probes");
        let loaded = clos_victim(&spec, 5, 4);
        assert!(
            loaded.summary.p50_us() >= quiet.summary.p50_us(),
            "converging load cannot speed the victim up: {:.2} vs {:.2}",
            loaded.summary.p50_us(),
            quiet.summary.p50_us()
        );
    }

    #[test]
    fn fattree_incast_scales_to_the_128_host_leaf_spine() {
        // The report's scale row: k = 8, o = 2 leaf-spine — 128 hosts
        // behind 16 leaves and 4 spines, victim crossing the spine.
        let table = specs::fattree_incast(8, 2, 2, 8);
        table.validate().unwrap();
        assert_eq!(table.topology.hosts(), 128);
        assert_eq!(table.topology.switches(), 20);
        assert_eq!(table.roles.len(), 10, "victim + 8 BSGs + sink");
        // A short run completes probes end to end across the spine.
        let out = RunSpec::new(ClusterConfig::hardware())
            .with_duration(SimDuration::from_us(300))
            .run(table);
        let victim = out
            .reports
            .iter()
            .find_map(|(n, r)| match r {
                crate::executor::RoleReport::RPerf(rep) => Some((n, rep)),
                _ => None,
            })
            .expect("victim report");
        assert!(victim.1.iterations > 0, "victim completed no probes");
    }
}
