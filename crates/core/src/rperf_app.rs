//! The RPerf measurement application.

use std::any::Any;

use rperf_fabric::{App, Ctx};
use rperf_host::{SoftwareModel, Tsc};
use rperf_model::{QpNum, ServiceLevel, Transport, Verb};
use rperf_sim::{SimDuration, SimRng, SimTime};
use rperf_stats::{LatencyHistogram, LatencySummary};
use rperf_verbs::{Cqe, CqeOpcode, RecvWr, SendWr, WrId};

/// Configuration of an [`RPerf`] instance.
#[derive(Debug, Clone)]
pub struct RPerfConfig {
    /// Destination node index.
    pub target: usize,
    /// Payload bytes per probe (the paper sweeps 64–4096).
    pub payload: u64,
    /// Service level of the probe flow.
    pub sl: ServiceLevel,
    /// Samples before this instant are discarded.
    pub warmup: SimDuration,
    /// Spin-loop iteration time of the completion poll. RPerf pins a
    /// thread and spins tightly, so this is a few nanoseconds — one of the
    /// reasons it resolves sub-100 ns RTTs.
    pub poll_period: SimDuration,
    /// Noise-stream seed (forked per instance).
    pub seed: u64,
}

impl RPerfConfig {
    /// The paper's default probe: 64-byte messages, SL0, 100 µs warm-up,
    /// tight poll loop.
    pub fn new(target: usize) -> Self {
        RPerfConfig {
            target,
            payload: 64,
            sl: ServiceLevel::new(0),
            warmup: SimDuration::from_us(100),
            poll_period: SimDuration::from_ns(6),
            seed: 0x5eed,
        }
    }

    /// Sets the payload size (builder style).
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the service level (builder style).
    pub fn with_sl(mut self, sl: ServiceLevel) -> Self {
        self.sl = sl;
        self
    }

    /// Sets the warm-up horizon (builder style).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the noise seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The measurement outcome of an RPerf run.
#[derive(Debug, Clone)]
pub struct RPerfReport {
    /// The RTT distribution (picoseconds), per Eq. 1.
    pub summary: LatencySummary,
    /// Completed probe iterations (including warm-up).
    pub iterations: u64,
    /// Probes where the loopback completed *after* the over-the-wire ACK
    /// (clock-resolution inversions; recorded as zero RTT).
    pub inversions: u64,
}

/// The RPerf measurement tool as an application (Section IV).
///
/// Each iteration posts a pair of SENDs — over-the-wire then loopback —
/// records `T_L` (loopback completion) and `T_W` (wire ACK completion)
/// from the host TSC, and computes `RTT = T_W − T_L`. Closed loop: the
/// next pair is posted once the current wire probe completes.
#[derive(Debug)]
pub struct RPerf {
    cfg: RPerfConfig,
    sw: Option<SoftwareModel>,
    qp: Option<QpNum>,
    iter: u64,
    t_posted: SimTime,
    t_l: Option<Tsc>,
    t_w: Option<Tsc>,
    hist: LatencyHistogram,
    inversions: u64,
}

const WIRE: u64 = 0;
const LOOP: u64 = 1;

impl RPerf {
    /// Creates an instance.
    pub fn new(cfg: RPerfConfig) -> Self {
        RPerf {
            cfg,
            sw: None,
            qp: None,
            iter: 0,
            t_posted: SimTime::ZERO,
            t_l: None,
            t_w: None,
            hist: LatencyHistogram::new(),
            inversions: 0,
        }
    }

    /// The measurement report so far.
    pub fn report(&self) -> RPerfReport {
        RPerfReport {
            summary: LatencySummary::from_histogram(&self.hist),
            iterations: self.iter,
            inversions: self.inversions,
        }
    }

    /// The raw RTT histogram (picoseconds).
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        let Some(qp) = self.qp else {
            debug_assert!(false, "fire before start");
            return;
        };
        // A receive buffer for the loopback SEND's delivery to self.
        ctx.post_recv(qp, RecvWr::new(WrId(u64::MAX - 1), 1 << 20));
        self.t_posted = ctx.now();
        self.t_l = None;
        self.t_w = None;
        let wire = SendWr::new(WrId(self.iter * 2 + WIRE), Verb::Send, self.cfg.payload)
            .to(ctx.lid_of(self.cfg.target), QpNum::new(1))
            .with_sl(self.cfg.sl);
        let own_lid = ctx.lid_of(ctx.node());
        let lback = SendWr::new(WrId(self.iter * 2 + LOOP), Verb::Send, self.cfg.payload)
            .to(own_lid, qp)
            .with_sl(self.cfg.sl)
            .via_loopback();
        // One doorbell for the pair: over-the-wire first, loopback second,
        // exactly as Section IV describes.
        if ctx.post_send_batch(qp, vec![wire, lback]).is_err() {
            debug_assert!(false, "invalid RPerf probes");
        }
    }

    fn timestamp(&mut self, ctx: &Ctx<'_>) -> Tsc {
        let Some(sw) = self.sw.as_mut() else {
            debug_assert!(false, "timestamp before start");
            return ctx.clock().read(ctx.now());
        };
        let detect = sw.poll_detect(self.cfg.poll_period);
        ctx.clock().read(ctx.now() + detect)
    }

    fn maybe_complete_iteration(&mut self, ctx: &mut Ctx<'_>) {
        let (Some(t_l), Some(t_w)) = (self.t_l, self.t_w) else {
            return;
        };
        self.iter += 1;
        if ctx.now() >= SimTime::ZERO + self.cfg.warmup {
            if t_w >= t_l {
                let cycles = t_w.cycles_since(t_l);
                self.hist.record(ctx.clock().to_duration(cycles).as_ps());
            } else {
                self.inversions += 1;
                self.hist.record(0);
            }
        }
        self.fire(ctx);
    }
}

impl App for RPerf {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.sw = Some(SoftwareModel::new(
            ctx.config().host,
            SimRng::new(self.cfg.seed),
        ));
        self.qp = Some(ctx.create_qp(Transport::Rc));
        self.fire(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        match cqe.opcode {
            CqeOpcode::Send => {
                let ts = self.timestamp(ctx);
                if cqe.wr_id.raw() % 2 == LOOP {
                    self.t_l = Some(ts);
                } else {
                    self.t_w = Some(ts);
                }
                self.maybe_complete_iteration(ctx);
            }
            // The loopback's delivery to self; not part of the measurement.
            CqeOpcode::Recv => {}
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_fabric::{Fabric, Sim};
    use rperf_model::analytic::rperf_zero_load_rtt_estimate;
    use rperf_model::ClusterConfig;
    use rperf_workloads::Sink;

    fn run_rperf(through_switch: bool, payload: u64) -> RPerfReport {
        let cfg = ClusterConfig::hardware();
        let fabric = if through_switch {
            Fabric::single_switch(cfg, 2, 5)
        } else {
            Fabric::direct_pair(cfg, 5)
        };
        let mut sim = Sim::new(fabric);
        sim.add_app(
            0,
            Box::new(RPerf::new(
                RPerfConfig::new(1)
                    .with_payload(payload)
                    .with_warmup(SimDuration::from_us(50)),
            )),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_until(SimTime::from_us(2_000));
        sim.app_as::<RPerf>(0).report()
    }

    #[test]
    fn zero_load_rtt_matches_analytic_oracle_no_switch() {
        let report = run_rperf(false, 64);
        assert!(report.iterations > 500, "{} iterations", report.iterations);
        let est = rperf_zero_load_rtt_estimate(&ClusterConfig::hardware(), 64, false);
        let p50 = report.summary.p50_ns();
        // The simulation includes noise the closed-form oracle ignores;
        // agree within ±25 ns.
        assert!(
            (p50 - est.as_ns_f64()).abs() < 25.0,
            "p50 {p50:.1} ns vs oracle {:.1} ns",
            est.as_ns_f64()
        );
        // Paper band: ~20 ns median at 64 B back-to-back.
        assert!(p50 < 80.0, "median back-to-back RTT too high: {p50:.1} ns");
    }

    #[test]
    fn zero_load_rtt_through_switch_in_paper_band() {
        let report = run_rperf(true, 64);
        let p50 = report.summary.p50_ns();
        let p999 = report.summary.p999_ns();
        // Paper: 432 ns median, 625 ns tail at 64 B.
        assert!(
            (350.0..550.0).contains(&p50),
            "switch median {p50:.1} ns outside paper band"
        );
        assert!(
            p999 > p50 + 100.0,
            "switch must add a visible tail: p50 {p50:.1}, p99.9 {p999:.1}"
        );
        assert!(p999 < p50 + 400.0, "tail implausibly heavy: {p999:.1}");
    }

    #[test]
    fn payload_growth_is_mild() {
        // The whole point of loopback subtraction: payload serialization
        // mostly cancels, so RTT grows far sublinearly with payload.
        let small = run_rperf(false, 64).summary.p50_ns();
        let large = run_rperf(false, 4096).summary.p50_ns();
        assert!(large > small, "4 KB should be slightly slower");
        assert!(
            large - small < 150.0,
            "64→4096 B delta should be tens of ns, got {:.1}",
            large - small
        );
    }

    #[test]
    fn inversions_are_rare() {
        let report = run_rperf(false, 64);
        let rate = report.inversions as f64 / report.iterations as f64;
        assert!(rate < 0.05, "inversion rate {rate}");
    }
}
