//! A model of OFED `perftest` (`ib_send_lat`-style ping-pong).

use std::any::Any;

use rperf_fabric::{App, Ctx};
use rperf_host::{SoftwareModel, Tsc};
use rperf_model::{QpNum, ServiceLevel, Transport, Verb};
use rperf_sim::{SimDuration, SimRng, SimTime};
use rperf_stats::{LatencyHistogram, LatencySummary};
use rperf_verbs::{Cqe, CqeOpcode, RecvWr, SendWr, WrId};

/// Configuration of a [`PerftestClient`] / [`PingPongServer`] pair.
#[derive(Debug, Clone)]
pub struct PerftestConfig {
    /// The peer node.
    pub peer: usize,
    /// Payload bytes.
    pub payload: u64,
    /// Service level.
    pub sl: ServiceLevel,
    /// Samples before this instant are discarded.
    pub warmup: SimDuration,
    /// Software cost of building and posting one message (descriptor
    /// setup, lkey handling). This is the *local-side* overhead Section
    /// III says perftest cannot subtract.
    pub post_sw: SimDuration,
    /// Completion-poll loop period (perftest's poll loop is heavier than
    /// a bare spin).
    pub poll_period: SimDuration,
    /// Software cost of generating the pong at the server — the
    /// *remote-side* overhead of the ping-pong methodology.
    pub response_sw: SimDuration,
    /// Noise seed.
    pub seed: u64,
}

impl PerftestConfig {
    /// Defaults calibrated to the paper's Fig. 6 magnitudes.
    pub fn new(peer: usize) -> Self {
        PerftestConfig {
            peer,
            payload: 64,
            sl: ServiceLevel::new(0),
            warmup: SimDuration::from_us(100),
            post_sw: SimDuration::from_ns(150),
            poll_period: SimDuration::from_ns(40),
            response_sw: SimDuration::from_ns(180),
            seed: 0xbeef,
        }
    }

    /// Sets the payload size (builder style).
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the warm-up horizon (builder style).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }
}

const TIMER_POST: u64 = 1;

/// The perftest latency client: software ping-pong over RC SEND.
///
/// Measures `rdtsc` before posting the ping and after *detecting* the
/// pong, so the reported RTT includes local posting, both NICs' PCIe
/// work, and the server's software response path — the biases Section III
/// attributes to existing tools.
#[derive(Debug)]
pub struct PerftestClient {
    cfg: PerftestConfig,
    sw: Option<SoftwareModel>,
    qp: Option<QpNum>,
    iter: u64,
    t0: Option<Tsc>,
    hist: LatencyHistogram,
}

impl PerftestClient {
    /// Creates the client.
    pub fn new(cfg: PerftestConfig) -> Self {
        PerftestClient {
            cfg,
            sw: None,
            qp: None,
            iter: 0,
            t0: None,
            hist: LatencyHistogram::new(),
        }
    }

    /// The RTT distribution (picoseconds).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.hist)
    }

    /// Completed ping-pongs.
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    fn post_ping(&mut self, ctx: &mut Ctx<'_>) {
        let Some(qp) = self.qp else {
            debug_assert!(false, "post_ping before start");
            return;
        };
        ctx.post_recv(qp, RecvWr::new(WrId(self.iter), 1 << 20));
        self.t0 = Some(ctx.read_tsc());
        let wr = SendWr::new(WrId(self.iter), Verb::Send, self.cfg.payload)
            .to(ctx.lid_of(self.cfg.peer), QpNum::new(1))
            .with_sl(self.cfg.sl);
        if ctx.post_send(qp, wr).is_err() {
            debug_assert!(false, "invalid ping WR");
        }
    }
}

impl App for PerftestClient {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let mut sw = SoftwareModel::new(ctx.config().host, SimRng::new(self.cfg.seed));
        self.qp = Some(ctx.create_qp(Transport::Rc));
        let delay = sw.step(self.cfg.post_sw);
        self.sw = Some(sw);
        ctx.set_timer(delay, TIMER_POST);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode != CqeOpcode::Recv {
            return; // own send completion: perftest ignores it
        }
        let Some(sw) = self.sw.as_mut() else {
            debug_assert!(false, "CQE before start");
            return;
        };
        let detect = sw.poll_detect(self.cfg.poll_period);
        let t1 = ctx.clock().read(ctx.now() + detect);
        let Some(t0) = self.t0.take() else {
            debug_assert!(false, "pong without ping");
            return;
        };
        self.iter += 1;
        if ctx.now() >= SimTime::ZERO + self.cfg.warmup {
            let cycles = t1.cycles_since(t0);
            self.hist.record(ctx.clock().to_duration(cycles).as_ps());
        }
        let delay = detect + sw.step(self.cfg.post_sw);
        ctx.set_timer(delay, TIMER_POST);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_POST {
            self.post_ping(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

const TIMER_PONG: u64 = 2;

/// The perftest server: responds to every ping with a software-generated
/// pong of the same size.
#[derive(Debug)]
pub struct PingPongServer {
    cfg: PerftestConfig,
    sw: Option<SoftwareModel>,
    qp: Option<QpNum>,
    pongs: u64,
    pending: u64,
}

impl PingPongServer {
    /// Creates the server (the `peer` in its config is the client node).
    pub fn new(cfg: PerftestConfig) -> Self {
        PingPongServer {
            cfg,
            sw: None,
            qp: None,
            pongs: 0,
            pending: 0,
        }
    }

    /// Pongs sent.
    pub fn pongs(&self) -> u64 {
        self.pongs
    }
}

impl App for PingPongServer {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.sw = Some(SoftwareModel::new(
            ctx.config().host,
            SimRng::new(self.cfg.seed ^ 0xF00D),
        ));
        let qp = ctx.create_qp(Transport::Rc);
        self.qp = Some(qp);
        for i in 0..1024 {
            ctx.post_recv(qp, RecvWr::new(WrId(i), 1 << 20));
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode != CqeOpcode::Recv {
            return;
        }
        // Poll detection + software response generation, then post.
        let Some(sw) = self.sw.as_mut() else {
            debug_assert!(false, "CQE before start");
            return;
        };
        let delay = sw.poll_detect(self.cfg.poll_period) + sw.step(self.cfg.response_sw);
        self.pending += 1;
        ctx.set_timer(delay, TIMER_PONG);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TIMER_PONG || self.pending == 0 {
            return;
        }
        self.pending -= 1;
        self.pongs += 1;
        let Some(qp) = self.qp else {
            debug_assert!(false, "pong timer before start");
            return;
        };
        ctx.post_recv(qp, RecvWr::new(WrId(1_000_000 + self.pongs), 1 << 20));
        let wr = SendWr::new(WrId(self.pongs), Verb::Send, self.cfg.payload)
            .to(ctx.lid_of(self.cfg.peer), QpNum::new(1))
            .with_sl(self.cfg.sl);
        if ctx.post_send(qp, wr).is_err() {
            debug_assert!(false, "invalid pong WR");
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_fabric::{Fabric, Sim};
    use rperf_model::ClusterConfig;

    fn run_perftest(payload: u64) -> (LatencySummary, u64) {
        let cfg = ClusterConfig::hardware();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 9));
        let pc = PerftestConfig::new(1)
            .with_payload(payload)
            .with_warmup(SimDuration::from_us(100));
        let mut server_cfg = pc.clone();
        server_cfg.peer = 0;
        sim.add_app(0, Box::new(PerftestClient::new(pc)));
        sim.add_app(1, Box::new(PingPongServer::new(server_cfg)));
        sim.start();
        sim.run_until(SimTime::from_us(5_000));
        let client = sim.app_as::<PerftestClient>(0);
        (client.summary(), client.iterations())
    }

    #[test]
    fn perftest_overstates_switch_latency_by_an_order_of_magnitude() {
        let (summary, iters) = run_perftest(64);
        assert!(iters > 500);
        let p50 = summary.p50_us();
        // Paper: 2.20 µs median at 64 B — versus 0.43 µs for RPerf.
        assert!(
            (1.2..3.5).contains(&p50),
            "perftest median {p50:.2} µs outside the paper's magnitude"
        );
    }

    #[test]
    fn perftest_grows_steeply_with_payload() {
        let (small, _) = run_perftest(64);
        let (large, _) = run_perftest(4096);
        // Paper: 2.20 µs → 5.46 µs.
        let growth = large.p50_us() - small.p50_us();
        assert!(
            growth > 1.5,
            "payload growth {growth:.2} µs too small: end-point PCIe \
             overheads must dominate"
        );
    }

    #[test]
    fn perftest_tail_reflects_software_spikes() {
        let (summary, _) = run_perftest(64);
        let tail_over_median = summary.p999_us() - summary.p50_us();
        // Paper: 4.11 µs tail vs 2.20 µs median.
        assert!(
            tail_over_median > 0.3,
            "software spikes should widen the tail, got {tail_over_median:.2} µs"
        );
    }
}
