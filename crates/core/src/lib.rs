//! **RPerf** — precise switch-latency measurement for RDMA fabrics, plus
//! the baseline tools it is compared against and the paper's experiment
//! scenarios.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Section IV): a micro-benchmarking tool that measures the RTT through
//! an InfiniBand switch *without* end-point bias, by combining
//!
//! 1. **post-poll** measurement over RC SEND — the remote RNIC generates
//!    the ACK immediately on receipt, before any remote-side software or
//!    PCIe work, excluding remote-side overheads; and
//! 2. **loopback subtraction** — each over-the-wire SEND is paired with a
//!    loopback SEND whose completion time measures exactly the local-side
//!    processing (MMIO, WQE engine, payload DMA), so
//!    `RTT = (T_W − T_P) − (T_L − T_P) = T_W − T_L` (Eq. 1).
//!
//! The baseline models reproduce each existing tool's *bias structure*
//! (Section III):
//!
//! * [`PerftestClient`]/[`PingPongServer`] — software ping-pong: includes
//!   remote-side software, both sides' PCIe, and local posting overheads.
//! * [`QperfClient`] — post-poll WRITE: excludes remote software but
//!   includes the remote payload DMA (Fig. 1b) and heavyweight
//!   timestamping; reports only averages.
//!
//! Experiments are described declaratively: a [`spec::ScenarioSpec`] is a
//! plain-data IR — topology, traffic matrix of typed roles, QoS mode,
//! scheduling policy, run window — and [`executor::execute`] is the one
//! generic function turning a spec plus a seed into a
//! [`executor::ScenarioOutcome`]. Specs also parse from a text format, so
//! arbitrary experiments run from files without recompiling. The
//! [`scenario`] module holds the paper's setups as spec tables plus thin
//! wrappers keeping the historical function signatures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
mod perftest;
mod qperf;
mod rperf_app;
pub mod scenario;
pub mod spec;

pub use executor::{
    dump_routes, execute, execute_budgeted, execute_budgeted_with_config, execute_with_config,
    ExecBudget, ExecInterrupt, RoleReport, ScenarioOutcome,
};
pub use perftest::{PerftestClient, PerftestConfig, PingPongServer};
pub use qperf::{QperfClient, QperfConfig, QperfReport};
pub use rperf_app::{RPerf, RPerfConfig, RPerfReport};
pub use spec::{DeviceProfile, QosMode, Role, RoleSpec, ScenarioSpec, SlSpec, SpecError};
