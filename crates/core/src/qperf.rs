//! A model of OFED `qperf` (`rc_lat`-style post-poll WRITE).

use std::any::Any;

use rperf_fabric::{App, Ctx};
use rperf_host::{SoftwareModel, Tsc};
use rperf_model::{QpNum, ServiceLevel, Transport, Verb};
use rperf_sim::{SimDuration, SimRng, SimTime};
use rperf_stats::{LatencyHistogram, LatencySummary};
use rperf_verbs::{Cqe, CqeOpcode, SendWr, WrId};

/// Configuration of a [`QperfClient`].
#[derive(Debug, Clone)]
pub struct QperfConfig {
    /// The peer node (passive: qperf's server does no per-message work
    /// for WRITE tests).
    pub peer: usize,
    /// Payload bytes.
    pub payload: u64,
    /// Service level.
    pub sl: ServiceLevel,
    /// Samples before this instant are discarded.
    pub warmup: SimDuration,
    /// Cost of one timestamp acquisition. qperf reads wall-clock time
    /// through heavier interfaces than a raw `rdtsc`, and both the start
    /// and stop reads sit inside the measured section — a large fixed
    /// bias RPerf avoids.
    pub timestamp_cost: SimDuration,
    /// Completion-poll loop period.
    pub poll_period: SimDuration,
    /// Per-payload-byte software cost inside the measured section (qperf
    /// touches its buffers each iteration, unlike a zero-copy tool).
    pub sw_per_byte: SimDuration,
    /// Noise seed.
    pub seed: u64,
}

impl QperfConfig {
    /// Defaults calibrated to the paper's Fig. 6 magnitudes.
    pub fn new(peer: usize) -> Self {
        QperfConfig {
            peer,
            payload: 64,
            sl: ServiceLevel::new(0),
            warmup: SimDuration::from_us(100),
            timestamp_cost: SimDuration::from_ns(600),
            poll_period: SimDuration::from_ns(40),
            sw_per_byte: SimDuration::from_ps(300),
            seed: 0xcafe,
        }
    }

    /// Sets the payload size (builder style).
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the warm-up horizon (builder style).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }
}

/// What qperf prints: only the average (Section III: "QPerf also fails to
/// perform precise tail latency measurement … and only reports the
/// average latency").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QperfReport {
    /// Mean RTT in microseconds — the only statistic the real tool emits.
    pub avg_us: f64,
    /// Iterations measured.
    pub iterations: u64,
}

const TIMER_POST: u64 = 1;

/// The qperf latency client: post-poll RDMA WRITE.
///
/// No remote software runs per message (the improvement over perftest),
/// but the WRITE is only acknowledged after the remote payload DMA
/// (Fig. 1b), and the heavyweight timestamping sits inside the measured
/// section — the residual biases Section III describes.
#[derive(Debug)]
pub struct QperfClient {
    cfg: QperfConfig,
    sw: Option<SoftwareModel>,
    qp: Option<QpNum>,
    iter: u64,
    t0: Option<Tsc>,
    pending_wr: Option<(QpNum, SendWr)>,
    hist: LatencyHistogram,
}

impl QperfClient {
    /// Creates the client.
    pub fn new(cfg: QperfConfig) -> Self {
        QperfClient {
            cfg,
            sw: None,
            qp: None,
            iter: 0,
            t0: None,
            pending_wr: None,
            hist: LatencyHistogram::new(),
        }
    }

    /// What the real tool reports.
    pub fn report(&self) -> QperfReport {
        QperfReport {
            avg_us: self.hist.mean() / 1e6,
            iterations: self.iter,
        }
    }

    /// The full distribution (the real tool discards this; kept for
    /// methodology comparisons).
    pub fn hidden_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.hist)
    }
}

impl App for QperfClient {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.sw = Some(SoftwareModel::new(
            ctx.config().host,
            SimRng::new(self.cfg.seed),
        ));
        self.qp = Some(ctx.create_qp(Transport::Rc));
        ctx.set_timer(SimDuration::from_ns(100), TIMER_POST);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode != CqeOpcode::Write {
            return;
        }
        let Some(sw) = self.sw.as_mut() else {
            debug_assert!(false, "CQE before start");
            return;
        };
        let detect = sw.poll_detect(self.cfg.poll_period);
        // The stop timestamp costs a full clock read inside the measured
        // section.
        let t1 = ctx
            .clock()
            .read(ctx.now() + detect + self.cfg.timestamp_cost);
        let Some(t0) = self.t0.take() else {
            debug_assert!(false, "completion without post");
            return;
        };
        self.iter += 1;
        if ctx.now() >= SimTime::ZERO + self.cfg.warmup {
            let cycles = t1.cycles_since(t0);
            self.hist.record(ctx.clock().to_duration(cycles).as_ps());
        }
        ctx.set_timer(detect, TIMER_POST);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TIMER_POST => {
                // Start timestamp; the post happens only after the clock
                // read completes (its cost is inside the measured span).
                self.t0 = Some(ctx.read_tsc());
                let Some(qp) = self.qp else {
                    debug_assert!(false, "post timer before start");
                    return;
                };
                let wr = SendWr::new(WrId(self.iter), Verb::Write, self.cfg.payload)
                    .to(ctx.lid_of(self.cfg.peer), QpNum::new(1))
                    .with_sl(self.cfg.sl);
                self.pending_wr = Some((qp, wr));
                let buffer_touch =
                    SimDuration::from_ps(self.cfg.sw_per_byte.as_ps() * self.cfg.payload);
                ctx.set_timer(self.cfg.timestamp_cost + buffer_touch, TIMER_ACTUAL_POST);
            }
            TIMER_ACTUAL_POST => {
                let Some((qp, wr)) = self.pending_wr.take() else {
                    debug_assert!(false, "deferred post without pending WR");
                    return;
                };
                if ctx.post_send(qp, wr).is_err() {
                    debug_assert!(false, "invalid qperf WRITE");
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

const TIMER_ACTUAL_POST: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_fabric::{Fabric, Sim};
    use rperf_model::ClusterConfig;
    use rperf_workloads::Sink;

    fn run_qperf(payload: u64) -> (QperfReport, LatencySummary) {
        let cfg = ClusterConfig::hardware();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 17));
        sim.add_app(
            0,
            Box::new(QperfClient::new(
                QperfConfig::new(1)
                    .with_payload(payload)
                    .with_warmup(SimDuration::from_us(100)),
            )),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_until(SimTime::from_us(5_000));
        let client = sim.app_as::<QperfClient>(0);
        (client.report(), client.hidden_summary())
    }

    #[test]
    fn qperf_average_in_paper_band() {
        let (report, _) = run_qperf(64);
        assert!(report.iterations > 300);
        // Paper: 2.82 µs median at 64 B.
        assert!(
            (1.8..4.0).contains(&report.avg_us),
            "qperf avg {:.2} µs outside the paper's magnitude",
            report.avg_us
        );
    }

    #[test]
    fn qperf_includes_remote_dma_growth() {
        let (small, _) = run_qperf(64);
        let (large, _) = run_qperf(4096);
        // Paper: 2.82 µs → 5.85 µs.
        let growth = large.avg_us - small.avg_us;
        assert!(
            growth > 1.0,
            "WRITE completion must pay the remote DMA: growth {growth:.2} µs"
        );
    }
}
