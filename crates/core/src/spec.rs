//! The scenario IR: a plain-data description of one experiment.
//!
//! A [`ScenarioSpec`] captures everything the paper varies between its
//! figures — the topology, the traffic matrix of typed application roles,
//! the QoS mode, the scheduler policy, the device profile and the run
//! window — with no code attached. One generic executor
//! ([`crate::executor::execute`]) turns a spec plus a seed into a
//! [`crate::executor::ScenarioOutcome`], so new experiments (arbitrary
//! switch chains, mixed-SL incasts, gaming adversaries placed anywhere)
//! are data, not Rust.
//!
//! Specs also have a text form — a small TOML subset parsed by
//! [`ScenarioSpec::parse`] and emitted by [`ScenarioSpec::to_text`] — so
//! `rperf-cli scenario <file>` runs experiments without recompiling:
//!
//! ```text
//! name = "chain-gaming"
//! qos = "gamed"
//! duration_ms = 2
//!
//! [topology]
//! kind = "chain"
//! hosts_per_switch = [1, 1, 3]
//!
//! [[role]]
//! node = 0
//! kind = "rperf"
//! target = 4
//! ```

use rperf_fabric::Topology;
use rperf_model::config::SchedPolicy;
use rperf_model::{ClusterConfig, ServiceLevel};
use rperf_sim::SimDuration;
use rperf_subnet::{FatTreeParams, TopologySpec};

/// QoS configuration of a scenario (Sections VII–VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosMode {
    /// Everything shares SL0/VL0 (Section VII).
    SharedSl,
    /// Latency traffic on SL1 → high-priority VL1 (Section VIII-C).
    DedicatedSl,
    /// Dedicated SL plus a bandwidth hog gaming the latency class
    /// (Section VIII-C, "Gaming the dedicated SL/VL setup").
    DedicatedSlWithPretend,
}

/// Which calibrated device model a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceProfile {
    /// The paper's hardware testbed (ConnectX-3 + SX6012).
    Hardware,
    /// The paper's OMNeT++ simulator profile.
    OmnetSimulator,
}

impl DeviceProfile {
    /// The cluster configuration of this profile.
    pub fn cluster_config(&self) -> ClusterConfig {
        match self {
            DeviceProfile::Hardware => ClusterConfig::hardware(),
            DeviceProfile::OmnetSimulator => ClusterConfig::omnet_simulator(),
        }
    }
}

/// A service-level choice that can defer to the scenario's QoS mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlSpec {
    /// Resolve from the QoS mode: latency roles (RPerf, LSG, pretend LSG)
    /// take SL1 when a dedicated SL is configured, everything else SL0.
    Auto,
    /// A fixed service level.
    Fixed(u8),
}

impl SlSpec {
    /// Resolves to a concrete service level for a latency-class role.
    fn latency_class(self, qos: QosMode) -> ServiceLevel {
        match self {
            SlSpec::Fixed(raw) => ServiceLevel::new(raw),
            SlSpec::Auto if qos == QosMode::SharedSl => ServiceLevel::new(0),
            SlSpec::Auto => ServiceLevel::new(1),
        }
    }

    /// Resolves to a concrete service level for a bulk-class role.
    fn bulk_class(self) -> ServiceLevel {
        match self {
            SlSpec::Fixed(raw) => ServiceLevel::new(raw),
            SlSpec::Auto => ServiceLevel::new(0),
        }
    }
}

/// A typed application role in the traffic matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// The RPerf measurement tool probing `target` (Section IV).
    RPerf {
        /// Destination node index.
        target: usize,
        /// Probe payload bytes.
        payload: u64,
        /// Probe-flow service level.
        sl: SlSpec,
        /// XORed into the experiment seed for this instance's noise
        /// stream, so co-running probes draw independent noise.
        seed_salt: u64,
    },
    /// A closed-loop latency-sensitive generator (application-level view).
    Lsg {
        /// Destination node index.
        target: usize,
        /// Payload bytes per probe.
        payload: u64,
        /// Flow service level.
        sl: SlSpec,
    },
    /// A bandwidth-sensitive generator.
    Bsg {
        /// Destination node index.
        target: usize,
        /// Payload bytes per message.
        payload: u64,
        /// Open-loop posting window.
        window: usize,
        /// Messages per doorbell.
        batch: usize,
        /// Flow service level.
        sl: SlSpec,
    },
    /// The QoS-gaming adversary: bulk data as small latency-class
    /// messages, plus an aggressively tuned posting engine.
    PretendLsg {
        /// Destination node index.
        target: usize,
        /// Bytes per segmented message.
        chunk: u64,
        /// The latency-class SL it masquerades on.
        sl: SlSpec,
    },
    /// The perftest-style ping-pong client.
    Perftest {
        /// The ping-pong peer node.
        peer: usize,
        /// Payload bytes.
        payload: u64,
    },
    /// The perftest-style ping-pong server.
    PerftestServer {
        /// The ping-pong peer node.
        peer: usize,
        /// Payload bytes.
        payload: u64,
    },
    /// The qperf-style post-poll WRITE client.
    Qperf {
        /// The (passive) peer node.
        peer: usize,
        /// Payload bytes.
        payload: u64,
    },
    /// The destination server: charged receive queues, delivery counting.
    Sink,
}

impl Role {
    /// The concrete service level this role sends on under `qos`.
    pub fn resolved_sl(&self, qos: QosMode) -> ServiceLevel {
        match self {
            Role::RPerf { sl, .. } | Role::Lsg { sl, .. } => sl.latency_class(qos),
            Role::PretendLsg { sl, .. } => match sl {
                SlSpec::Fixed(raw) => ServiceLevel::new(*raw),
                // The whole point of the adversary is squatting on the
                // latency class.
                SlSpec::Auto => ServiceLevel::new(1),
            },
            Role::Bsg { sl, .. } => sl.bulk_class(),
            Role::Perftest { .. } | Role::PerftestServer { .. } | Role::Qperf { .. } => {
                ServiceLevel::new(0)
            }
            Role::Sink => ServiceLevel::new(0),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Role::RPerf { .. } => "rperf",
            Role::Lsg { .. } => "lsg",
            Role::Bsg { .. } => "bsg",
            Role::PretendLsg { .. } => "pretend_lsg",
            Role::Perftest { .. } => "perftest",
            Role::PerftestServer { .. } => "perftest_server",
            Role::Qperf { .. } => "qperf",
            Role::Sink => "sink",
        }
    }
}

/// One role bound to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleSpec {
    /// The host index the application runs on.
    pub node: usize,
    /// What it does.
    pub role: Role,
}

/// The plain-data description of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// A label carried into the outcome (and the JSON artifact).
    pub name: String,
    /// Device profile (ignored by
    /// [`crate::executor::execute_with_config`], which takes an explicit
    /// configuration).
    pub profile: DeviceProfile,
    /// Switch scheduling policy.
    pub policy: SchedPolicy,
    /// QoS mode; a non-shared mode installs the dedicated SL1→VL1 tables.
    pub qos: QosMode,
    /// Warm-up horizon: samples and bandwidth before it are discarded.
    pub warmup: SimDuration,
    /// Measurement window after warm-up.
    pub duration: SimDuration,
    /// The fabric shape.
    pub topology: Topology,
    /// The traffic matrix.
    pub roles: Vec<RoleSpec>,
    /// Worker domains for sharded execution (1 = the sequential engine).
    ///
    /// Results are identical for every value — sharding is a wall-clock
    /// optimization, not a model change (see DESIGN.md §3) — so this knob
    /// does not participate in scenario identity: [`ScenarioSpec::to_text`]
    /// omits it at the default and cache keys built from the canonical
    /// text stay stable across shard counts.
    pub shards: usize,
}

impl ScenarioSpec {
    /// A spec over `topology` with the suite's defaults: hardware profile,
    /// FCFS, shared SL, 200 µs warm-up, 5 ms measurement, no roles yet.
    pub fn new(name: impl Into<String>, topology: Topology) -> Self {
        ScenarioSpec {
            name: name.into(),
            profile: DeviceProfile::Hardware,
            policy: SchedPolicy::Fcfs,
            qos: QosMode::SharedSl,
            warmup: SimDuration::from_us(200),
            duration: SimDuration::from_ms(5),
            topology,
            roles: Vec::new(),
            shards: 1,
        }
    }

    /// Sets the device profile (builder style).
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the scheduling policy (builder style).
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the QoS mode (builder style).
    pub fn with_qos(mut self, qos: QosMode) -> Self {
        self.qos = qos;
        self
    }

    /// Sets the measurement window (builder style).
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets warm-up and measurement window together (builder style).
    pub fn with_window(mut self, warmup: SimDuration, duration: SimDuration) -> Self {
        self.warmup = warmup;
        self.duration = duration;
        self
    }

    /// Binds `role` to `node` (builder style).
    pub fn with_role(mut self, node: usize, role: Role) -> Self {
        self.roles.push(RoleSpec { node, role });
        self
    }

    /// Sets the worker-domain count for sharded execution (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Checks the spec is executable: at least one role, every node and
    /// every target/peer inside the topology, no node claimed twice, and
    /// no self-targeting flow.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let hosts = self.topology.hosts();
        if self.roles.is_empty() {
            return Err("a scenario needs at least one role".into());
        }
        if self.duration == SimDuration::ZERO {
            return Err("the measurement window must be non-zero".into());
        }
        if self.shards == 0 || self.shards > 64 {
            return Err(format!("shards must be in 1..=64, got {}", self.shards));
        }
        // Every worker domain needs at least one device, or
        // `partition_devices` would produce empty shards at run time.
        let devices = hosts + self.topology.switches();
        if self.shards > devices {
            return Err(format!(
                "shards = {} exceeds the {} devices in the topology \
                 ({} hosts + {} switches)",
                self.shards,
                devices,
                hosts,
                self.topology.switches()
            ));
        }
        if let Topology::FatTree(ft) = &self.topology {
            ft.validate()?;
        }
        let mut claimed = vec![false; hosts];
        for r in &self.roles {
            if r.node >= hosts {
                return Err(format!(
                    "role `{}` on node {} but the topology has {} hosts",
                    r.role.kind_name(),
                    r.node,
                    hosts
                ));
            }
            if claimed[r.node] {
                return Err(format!("node {} has more than one role", r.node));
            }
            claimed[r.node] = true;
            let dest = match &r.role {
                Role::RPerf { target, .. }
                | Role::Lsg { target, .. }
                | Role::Bsg { target, .. }
                | Role::PretendLsg { target, .. } => Some(*target),
                Role::Perftest { peer, .. }
                | Role::PerftestServer { peer, .. }
                | Role::Qperf { peer, .. } => Some(*peer),
                Role::Sink => None,
            };
            if let Some(dest) = dest {
                if dest >= hosts {
                    return Err(format!(
                        "role `{}` on node {} targets node {dest}, outside the \
                         {hosts}-host topology",
                        r.role.kind_name(),
                        r.node,
                    ));
                }
                if dest == r.node {
                    return Err(format!(
                        "role `{}` on node {} targets itself",
                        r.role.kind_name(),
                        r.node,
                    ));
                }
            }
            if let Role::Bsg { window, batch, .. } = &r.role {
                if *window == 0 || *batch == 0 {
                    return Err(format!(
                        "bsg on node {}: window and batch must be at least 1",
                        r.node
                    ));
                }
            }
            if let Role::RPerf { sl, .. }
            | Role::Lsg { sl, .. }
            | Role::Bsg { sl, .. }
            | Role::PretendLsg { sl, .. } = &r.role
            {
                if let SlSpec::Fixed(raw) = sl {
                    if *raw > ServiceLevel::MAX {
                        return Err(format!(
                            "node {}: service level {raw} out of range 0..=15",
                            r.node
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

/// A parse failure, locating the offending line (1-based).
///
/// This is [`rperf_model::textcfg::ParseError`]: the scenario format is
/// one consumer of the shared TOML-subset reader.
pub use rperf_model::textcfg::ParseError as SpecError;

use rperf_model::textcfg::{
    err, expect_int, expect_list, expect_number, expect_str, Document, Section, Value,
};

fn duration_from(
    section: &Section,
    base: &str,
    default: SimDuration,
) -> Result<SimDuration, SpecError> {
    // Last one of `<base>_ps` / `<base>_us` / `<base>_ms` wins, matching
    // TOML's "later duplicate overrides" intuition for alternative units.
    let mut result = default;
    for (line, key, v) in &section.entries {
        let Some(unit) = key.strip_prefix(base).and_then(|r| r.strip_prefix('_')) else {
            continue;
        };
        let scale = match unit {
            "ps" => 1.0,
            "us" => 1e6,
            "ms" => 1e9,
            _ => continue,
        };
        if unit == "ps" {
            result = SimDuration::from_ps(expect_int(*line, key, v)?);
        } else {
            let n = expect_number(*line, key, v)?;
            if n < 0.0 || !n.is_finite() {
                return err(*line, format!("`{key}` must be a non-negative number"));
            }
            result = SimDuration::from_ps((n * scale).round() as u64);
        }
    }
    Ok(result)
}

fn parse_topology(section: &Section) -> Result<Topology, SpecError> {
    let header = section.header_line;
    let Some((kline, kval)) = section.get("kind") else {
        return err(header, "[topology] needs a `kind` key");
    };
    let kind = expect_str(kline, "kind", kval)?;
    let allowed: &[&str] = match kind.as_str() {
        "direct_pair" => &["kind"],
        "single_switch" => &["kind", "hosts"],
        "two_switch" => &["kind", "upstream", "downstream"],
        "chain" => &["kind", "hosts_per_switch"],
        "star" => &["kind", "leaves", "hosts_per_leaf"],
        "custom" => &["kind", "switches", "host_attachments", "trunks"],
        "fattree" => &["kind", "k", "tiers", "oversubscription"],
        other => {
            return err(
                kline,
                format!(
                    "unknown topology kind `{other}` (expected direct_pair, single_switch, \
                     two_switch, chain, star, custom, or fattree)"
                ),
            )
        }
    };
    section.check_keys(&format!("topology `{kind}`"), allowed)?;
    let req_int = |key: &str| -> Result<u64, SpecError> {
        let Some((line, v)) = section.get(key) else {
            return err(header, format!("topology `{kind}` needs `{key}`"));
        };
        expect_int(line, key, v)
    };
    Ok(match kind.as_str() {
        "direct_pair" => Topology::DirectPair,
        "single_switch" => Topology::SingleSwitch {
            hosts: req_int("hosts")? as usize,
        },
        "two_switch" => Topology::TwoSwitch {
            upstream: req_int("upstream")? as usize,
            downstream: req_int("downstream")? as usize,
        },
        "chain" => {
            let Some((line, v)) = section.get("hosts_per_switch") else {
                return err(header, "topology `chain` needs `hosts_per_switch`");
            };
            let hosts: Vec<usize> = expect_list(line, "hosts_per_switch", v)?
                .into_iter()
                .map(|n| n as usize)
                .collect();
            if hosts.is_empty() {
                return err(line, "`hosts_per_switch` must name at least one switch");
            }
            Topology::Spec(TopologySpec::chain(hosts.len(), &hosts))
        }
        "star" => Topology::Spec(TopologySpec::star(
            req_int("leaves")? as usize,
            req_int("hosts_per_leaf")? as usize,
        )),
        "custom" => {
            let switches = req_int("switches")? as usize;
            let Some((line, v)) = section.get("host_attachments") else {
                return err(header, "topology `custom` needs `host_attachments`");
            };
            let attachments: Vec<usize> = expect_list(line, "host_attachments", v)?
                .into_iter()
                .map(|n| n as usize)
                .collect();
            if let Some(&bad) = attachments.iter().find(|&&a| a >= switches) {
                return err(
                    line,
                    format!(
                        "host attached to switch {bad}, but there are only {switches} switches"
                    ),
                );
            }
            let trunks = match section.get("trunks") {
                None => Vec::new(),
                Some((tline, Value::Pairs(p))) => {
                    if let Some(&(a, b)) = p.iter().find(|&&(a, b)| a >= switches || b >= switches)
                    {
                        return err(
                            tline,
                            format!("trunk [{a}, {b}] references a switch outside 0..{switches}"),
                        );
                    }
                    p.clone()
                }
                Some((tline, Value::List(l))) if l.is_empty() => {
                    let _ = tline;
                    Vec::new()
                }
                Some((tline, other)) => {
                    return err(
                        tline,
                        format!(
                            "`trunks` expects a list of pairs like [[0, 1]], got {}",
                            other.type_name()
                        ),
                    )
                }
            };
            Topology::Spec(TopologySpec::custom(switches, attachments, trunks))
        }
        "fattree" => {
            let opt_int = |key: &str, default: u64| -> Result<u64, SpecError> {
                match section.get(key) {
                    None => Ok(default),
                    Some((line, v)) => expect_int(line, key, v),
                }
            };
            let ft = FatTreeParams::new(
                req_int("k")? as usize,
                opt_int("tiers", 2)? as usize,
                opt_int("oversubscription", 1)? as usize,
            );
            if let Err(msg) = ft.validate() {
                // Blame the line of the offending key (falling back to the
                // section header for defaulted keys).
                let blame = |key: &str| section.get(key).map(|(l, _)| l).unwrap_or(header);
                let line = if msg.contains("tiers") {
                    blame("tiers")
                } else if msg.contains("oversubscription") {
                    blame("oversubscription")
                } else {
                    blame("k")
                };
                return err(line, msg);
            }
            Topology::FatTree(ft)
        }
        _ => unreachable!("kind validated above"),
    })
}

fn parse_sl(section: &Section) -> Result<SlSpec, SpecError> {
    match section.get("sl") {
        None => Ok(SlSpec::Auto),
        Some((_, Value::Str(s))) if s == "auto" => Ok(SlSpec::Auto),
        Some((line, Value::Str(s))) => err(
            line,
            format!("`sl` expects \"auto\" or an integer, got \"{s}\""),
        ),
        Some((line, v)) => {
            let raw = expect_int(line, "sl", v)?;
            if raw > ServiceLevel::MAX as u64 {
                return err(line, format!("service level {raw} out of range 0..=15"));
            }
            Ok(SlSpec::Fixed(raw as u8))
        }
    }
}

fn parse_role(section: &Section) -> Result<RoleSpec, SpecError> {
    let header = section.header_line;
    let Some((nline, nval)) = section.get("node") else {
        return err(header, "[[role]] needs a `node` key");
    };
    let node = expect_int(nline, "node", nval)? as usize;
    let Some((kline, kval)) = section.get("kind") else {
        return err(header, "[[role]] needs a `kind` key");
    };
    let kind = expect_str(kline, "kind", kval)?;

    let opt_int = |key: &str, default: u64| -> Result<u64, SpecError> {
        match section.get(key) {
            None => Ok(default),
            Some((line, v)) => expect_int(line, key, v),
        }
    };
    let req_int = |key: &str| -> Result<u64, SpecError> {
        let Some((line, v)) = section.get(key) else {
            return err(header, format!("role `{kind}` needs `{key}`"));
        };
        expect_int(line, key, v)
    };

    let allowed: &[&str] = match kind.as_str() {
        "rperf" => &["node", "kind", "target", "payload", "sl", "seed_salt"],
        "lsg" => &["node", "kind", "target", "payload", "sl"],
        "bsg" => &["node", "kind", "target", "payload", "window", "batch", "sl"],
        "pretend_lsg" => &["node", "kind", "target", "chunk", "sl"],
        "perftest" | "perftest_server" | "qperf" => &["node", "kind", "peer", "payload"],
        "sink" => &["node", "kind"],
        other => {
            return err(
                kline,
                format!(
                    "unknown role kind `{other}` (expected rperf, lsg, bsg, pretend_lsg, \
                     perftest, perftest_server, qperf, or sink)"
                ),
            )
        }
    };
    section.check_keys(&format!("role `{kind}`"), allowed)?;

    let role = match kind.as_str() {
        "rperf" => Role::RPerf {
            target: req_int("target")? as usize,
            payload: opt_int("payload", 64)?,
            sl: parse_sl(section)?,
            seed_salt: opt_int("seed_salt", 0)?,
        },
        "lsg" => Role::Lsg {
            target: req_int("target")? as usize,
            payload: opt_int("payload", 64)?,
            sl: parse_sl(section)?,
        },
        "bsg" => Role::Bsg {
            target: req_int("target")? as usize,
            payload: opt_int("payload", 4096)?,
            window: opt_int("window", 128)? as usize,
            batch: opt_int("batch", 1)? as usize,
            sl: parse_sl(section)?,
        },
        "pretend_lsg" => Role::PretendLsg {
            target: req_int("target")? as usize,
            chunk: opt_int("chunk", 256)?,
            sl: parse_sl(section)?,
        },
        "perftest" => Role::Perftest {
            peer: req_int("peer")? as usize,
            payload: opt_int("payload", 64)?,
        },
        "perftest_server" => Role::PerftestServer {
            peer: req_int("peer")? as usize,
            payload: opt_int("payload", 64)?,
        },
        "qperf" => Role::Qperf {
            peer: req_int("peer")? as usize,
            payload: opt_int("payload", 64)?,
        },
        "sink" => Role::Sink,
        _ => unreachable!("kind validated above"),
    };
    Ok(RoleSpec { node, role })
}

impl ScenarioSpec {
    /// Parses the text form.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] with the 1-based line number of the first
    /// problem. Parsing is purely syntactic; call [`ScenarioSpec::validate`]
    /// afterwards for semantic checks (node ranges, duplicate nodes).
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let doc = Document::parse(text)?;
        let top = doc.top;
        let mut topology: Option<Section> = None;
        let mut roles: Vec<Section> = Vec::new();
        for sec in doc.sections {
            if sec.raw_header == "[topology]" {
                if topology.is_some() {
                    return err(sec.header_line, "duplicate [topology] section");
                }
                topology = Some(sec);
            } else if sec.raw_header == "[[role]]" {
                roles.push(sec);
            } else {
                return err(
                    sec.header_line,
                    format!(
                        "unknown section `{}` (expected [topology] or [[role]])",
                        sec.raw_header
                    ),
                );
            }
        }

        top.check_keys(
            "the scenario header",
            &[
                "name",
                "profile",
                "policy",
                "qos",
                "warmup_ps",
                "warmup_us",
                "warmup_ms",
                "duration_ps",
                "duration_us",
                "duration_ms",
                "shards",
            ],
        )?;

        let name = match top.get("name") {
            Some((line, v)) => expect_str(line, "name", v)?,
            None => "scenario".to_string(),
        };
        let profile = match top.get("profile") {
            None => DeviceProfile::Hardware,
            Some((line, v)) => match expect_str(line, "profile", v)?.as_str() {
                "hardware" | "hw" => DeviceProfile::Hardware,
                "omnet" | "sim" => DeviceProfile::OmnetSimulator,
                other => return err(line, format!("unknown profile `{other}` (hw|omnet)")),
            },
        };
        let policy = match top.get("policy") {
            None => SchedPolicy::Fcfs,
            Some((line, v)) => match expect_str(line, "policy", v)?.as_str() {
                "fcfs" => SchedPolicy::Fcfs,
                "rr" => SchedPolicy::RoundRobin,
                "fair" => SchedPolicy::FairShare,
                other => return err(line, format!("unknown policy `{other}` (fcfs|rr|fair)")),
            },
        };
        let qos = match top.get("qos") {
            None => QosMode::SharedSl,
            Some((line, v)) => match expect_str(line, "qos", v)?.as_str() {
                "shared" => QosMode::SharedSl,
                "dedicated" => QosMode::DedicatedSl,
                "gamed" => QosMode::DedicatedSlWithPretend,
                other => {
                    return err(
                        line,
                        format!("unknown qos `{other}` (shared|dedicated|gamed)"),
                    )
                }
            },
        };
        let warmup = duration_from(&top, "warmup", SimDuration::from_us(200))?;
        let duration = duration_from(&top, "duration", SimDuration::from_ms(5))?;
        let (shards_line, shards) = match top.get("shards") {
            None => (0, 1),
            Some((line, v)) => (line, expect_int(line, "shards", v)? as usize),
        };

        let Some(topology) = topology else {
            return err(text.lines().count().max(1), "missing [topology] section");
        };
        let topology = parse_topology(&topology)?;
        // Reject over-sharding at the `shards =` line rather than letting
        // `partition_devices` produce empty worker domains at run time.
        let devices = topology.hosts() + topology.switches();
        if shards > devices {
            return err(
                shards_line,
                format!(
                    "shards = {shards} exceeds the {devices} devices in the topology \
                     ({} hosts + {} switches)",
                    topology.hosts(),
                    topology.switches()
                ),
            );
        }
        let roles = roles
            .iter()
            .map(parse_role)
            .collect::<Result<Vec<_>, _>>()?;

        Ok(ScenarioSpec {
            name,
            profile,
            policy,
            qos,
            warmup,
            duration,
            topology,
            roles,
            shards,
        })
    }

    /// Emits the canonical text form.
    ///
    /// The emission is lossless: `parse(to_text(spec)) == spec` (run
    /// windows are written in exact picoseconds; chain/star topologies
    /// are written in the equivalent `custom` form, which compares equal
    /// structurally).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let quoted = |s: &str| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
        let _ = writeln!(out, "name = {}", quoted(&self.name));
        let profile = match self.profile {
            DeviceProfile::Hardware => "hardware",
            DeviceProfile::OmnetSimulator => "omnet",
        };
        let _ = writeln!(out, "profile = \"{profile}\"");
        let policy = match self.policy {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::RoundRobin => "rr",
            SchedPolicy::FairShare => "fair",
        };
        let _ = writeln!(out, "policy = \"{policy}\"");
        let qos = match self.qos {
            QosMode::SharedSl => "shared",
            QosMode::DedicatedSl => "dedicated",
            QosMode::DedicatedSlWithPretend => "gamed",
        };
        let _ = writeln!(out, "qos = \"{qos}\"");
        let _ = writeln!(out, "warmup_ps = {}", self.warmup.as_ps());
        let _ = writeln!(out, "duration_ps = {}", self.duration.as_ps());
        // Emitted only away from the default: sharding never changes
        // results, so the canonical text (and every cache key derived
        // from it) is shard-agnostic unless a spec opts in explicitly.
        if self.shards != 1 {
            let _ = writeln!(out, "shards = {}", self.shards);
        }

        let _ = writeln!(out, "\n[topology]");
        match &self.topology {
            Topology::DirectPair => {
                let _ = writeln!(out, "kind = \"direct_pair\"");
            }
            Topology::SingleSwitch { hosts } => {
                let _ = writeln!(out, "kind = \"single_switch\"\nhosts = {hosts}");
            }
            Topology::TwoSwitch {
                upstream,
                downstream,
            } => {
                let _ = writeln!(
                    out,
                    "kind = \"two_switch\"\nupstream = {upstream}\ndownstream = {downstream}"
                );
            }
            Topology::Spec(spec) => {
                let _ = writeln!(out, "kind = \"custom\"\nswitches = {}", spec.switches());
                let attachments: Vec<String> = spec
                    .host_attachments()
                    .iter()
                    .map(|a| a.to_string())
                    .collect();
                let _ = writeln!(out, "host_attachments = [{}]", attachments.join(", "));
                let trunks: Vec<String> = spec
                    .trunks()
                    .iter()
                    .map(|(a, b)| format!("[{a}, {b}]"))
                    .collect();
                let _ = writeln!(out, "trunks = [{}]", trunks.join(", "));
            }
            Topology::FatTree(ft) => {
                let _ = writeln!(
                    out,
                    "kind = \"fattree\"\nk = {}\ntiers = {}\noversubscription = {}",
                    ft.k, ft.tiers, ft.oversubscription
                );
            }
        }

        for r in &self.roles {
            let _ = writeln!(out, "\n[[role]]\nnode = {}", r.node);
            let _ = writeln!(out, "kind = \"{}\"", r.role.kind_name());
            let sl_text = |sl: &SlSpec| match sl {
                SlSpec::Auto => "\"auto\"".to_string(),
                SlSpec::Fixed(raw) => raw.to_string(),
            };
            match &r.role {
                Role::RPerf {
                    target,
                    payload,
                    sl,
                    seed_salt,
                } => {
                    let _ = writeln!(
                        out,
                        "target = {target}\npayload = {payload}\nsl = {}\nseed_salt = {seed_salt}",
                        sl_text(sl)
                    );
                }
                Role::Lsg {
                    target,
                    payload,
                    sl,
                } => {
                    let _ = writeln!(
                        out,
                        "target = {target}\npayload = {payload}\nsl = {}",
                        sl_text(sl)
                    );
                }
                Role::Bsg {
                    target,
                    payload,
                    window,
                    batch,
                    sl,
                } => {
                    let _ = writeln!(
                        out,
                        "target = {target}\npayload = {payload}\nwindow = {window}\n\
                         batch = {batch}\nsl = {}",
                        sl_text(sl)
                    );
                }
                Role::PretendLsg { target, chunk, sl } => {
                    let _ = writeln!(
                        out,
                        "target = {target}\nchunk = {chunk}\nsl = {}",
                        sl_text(sl)
                    );
                }
                Role::Perftest { peer, payload }
                | Role::PerftestServer { peer, payload }
                | Role::Qperf { peer, payload } => {
                    let _ = writeln!(out, "peer = {peer}\npayload = {payload}");
                }
                Role::Sink => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GAMING: &str = r#"
# A chain with the hog two hops from the victim.
name = "chain-gaming"
profile = "hardware"
qos = "gamed"
duration_ms = 2

[topology]
kind = "chain"
hosts_per_switch = [1, 1, 3]

[[role]]
node = 0
kind = "rperf"
target = 4
seed_salt = 0xA5

[[role]]
node = 1
kind = "pretend_lsg"
target = 4

[[role]]
node = 4
kind = "sink"
"#;

    #[test]
    fn parses_a_full_scenario() {
        let spec = ScenarioSpec::parse(GAMING).unwrap();
        assert_eq!(spec.name, "chain-gaming");
        assert_eq!(spec.qos, QosMode::DedicatedSlWithPretend);
        assert_eq!(spec.duration, SimDuration::from_ms(2));
        assert_eq!(spec.warmup, SimDuration::from_us(200)); // default
        assert_eq!(spec.topology.hosts(), 5);
        assert_eq!(spec.topology.switches(), 3);
        assert_eq!(spec.roles.len(), 3);
        assert_eq!(
            spec.roles[0].role,
            Role::RPerf {
                target: 4,
                payload: 64,
                sl: SlSpec::Auto,
                seed_salt: 0xA5,
            }
        );
        spec.validate().unwrap();
    }

    #[test]
    fn roundtrips_through_text() {
        let spec = ScenarioSpec::parse(GAMING).unwrap();
        let text = spec.to_text();
        let back = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(spec, back, "canonical text form must round-trip:\n{text}");
    }

    #[test]
    fn shards_knob_parses_validates_and_roundtrips() {
        let spec = ScenarioSpec::parse(GAMING).unwrap();
        assert_eq!(spec.shards, 1, "shards defaults to the sequential engine");
        assert!(
            !spec.to_text().contains("shards"),
            "the default must stay out of the canonical text (cache keys)"
        );

        let sharded = spec.clone().with_shards(4);
        let text = sharded.to_text();
        assert!(text.contains("shards = 4"), "{text}");
        let back = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(back, sharded, "non-default shards must round-trip");
        back.validate().unwrap();

        assert!(
            spec.clone()
                .with_shards(0)
                .validate()
                .unwrap_err()
                .contains("shards"),
            "shards = 0 must be rejected"
        );
        assert!(
            spec.clone()
                .with_shards(65)
                .validate()
                .unwrap_err()
                .contains("shards"),
            "shards > 64 must be rejected"
        );
    }

    #[test]
    fn fattree_topology_parses_defaults_and_roundtrips() {
        let spec = ScenarioSpec::parse(
            "name = \"clos\"\n[topology]\nkind = \"fattree\"\nk = 4\n\n\
             [[role]]\nnode = 0\nkind = \"rperf\"\ntarget = 7\n\n\
             [[role]]\nnode = 7\nkind = \"sink\"",
        )
        .unwrap();
        // tiers defaults to 2, oversubscription to 1: 8 hosts, 6 switches.
        assert_eq!(
            spec.topology,
            Topology::FatTree(FatTreeParams::new(4, 2, 1))
        );
        assert_eq!(spec.topology.hosts(), 8);
        assert_eq!(spec.topology.switches(), 6);
        spec.validate().unwrap();
        let back = ScenarioSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(back, spec, "fattree must round-trip through text");

        let three = ScenarioSpec::parse(
            "[topology]\nkind = \"fattree\"\nk = 4\ntiers = 3\noversubscription = 2",
        )
        .unwrap();
        assert_eq!(
            three.topology,
            Topology::FatTree(FatTreeParams::new(4, 3, 2))
        );
    }

    #[test]
    fn fattree_errors_carry_the_offending_line() {
        let e = ScenarioSpec::parse("[topology]\nkind = \"fattree\"\nk = 5").unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.msg.contains("even"), "{e}");

        let e =
            ScenarioSpec::parse("[topology]\nkind = \"fattree\"\nk = 4\ntiers = 7").unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.msg.contains("tiers"), "{e}");

        let e = ScenarioSpec::parse("[topology]\nkind = \"fattree\"").unwrap_err();
        assert!(e.msg.contains('k'), "missing k is reported: {e}");
    }

    #[test]
    fn over_sharded_specs_are_rejected_with_line_numbers() {
        // direct_pair has 2 devices; shards = 3 cannot be satisfied.
        let e = ScenarioSpec::parse("shards = 3\n[topology]\nkind = \"direct_pair\"").unwrap_err();
        assert_eq!(e.line, 1, "{e}");
        assert!(e.msg.contains("2 devices"), "{e}");

        // The programmatic path (CLI --shards override) is caught by
        // validate() instead.
        let spec = ScenarioSpec::new("t", Topology::DirectPair)
            .with_role(0, Role::Sink)
            .with_shards(3);
        let msg = spec.validate().unwrap_err();
        assert!(msg.contains("2 devices"), "{msg}");

        // At the boundary it is fine: 2 hosts + 0 switches = 2 devices.
        ScenarioSpec::new("t", Topology::DirectPair)
            .with_role(0, Role::Sink)
            .with_shards(2)
            .validate()
            .unwrap();
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e =
            ScenarioSpec::parse("name = \"x\"\nbogus_key = 3\n[topology]\nkind = \"direct_pair\"")
                .unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.msg.contains("bogus_key"), "{e}");

        let e = ScenarioSpec::parse("[topology]\nkind = \"ring\"").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.msg.contains("ring"), "{e}");

        let e = ScenarioSpec::parse("[topology]\nkind = \"single_switch\"\nhosts = \"two\"")
            .unwrap_err();
        assert_eq!(e.line, 3, "{e}");

        let e = ScenarioSpec::parse(
            "[topology]\nkind = \"single_switch\"\nhosts = 2\n\n[[role]]\nkind = \"sink\"",
        )
        .unwrap_err();
        assert_eq!(e.line, 5, "missing node reports the section header: {e}");

        let e = ScenarioSpec::parse("duration_ms = oops\n[topology]\nkind = \"direct_pair\"")
            .unwrap_err();
        assert_eq!(e.line, 1, "{e}");
    }

    #[test]
    fn missing_topology_is_an_error() {
        let e = ScenarioSpec::parse("name = \"x\"").unwrap_err();
        assert!(e.msg.contains("[topology]"), "{e}");
    }

    #[test]
    fn validate_rejects_bad_wiring() {
        let base = || ScenarioSpec::new("t", Topology::SingleSwitch { hosts: 2 });
        assert!(base().validate().is_err(), "no roles");
        let out_of_range = base().with_role(5, Role::Sink).validate().unwrap_err();
        assert!(out_of_range.contains("2 hosts"), "{out_of_range}");
        let self_target = base()
            .with_role(
                0,
                Role::Bsg {
                    target: 0,
                    payload: 4096,
                    window: 128,
                    batch: 1,
                    sl: SlSpec::Auto,
                },
            )
            .validate()
            .unwrap_err();
        assert!(self_target.contains("itself"), "{self_target}");
        let dup = base()
            .with_role(0, Role::Sink)
            .with_role(0, Role::Sink)
            .validate()
            .unwrap_err();
        assert!(dup.contains("more than one role"), "{dup}");
    }

    #[test]
    fn comments_and_units_parse() {
        let spec = ScenarioSpec::parse(
            "name = \"a # not a comment\" # a real comment\nwarmup_us = 50\nduration_us = 1500\n\
             [topology]\nkind = \"two_switch\"\nupstream = 1\ndownstream = 2",
        )
        .unwrap();
        assert_eq!(spec.name, "a # not a comment");
        assert_eq!(spec.warmup, SimDuration::from_us(50));
        assert_eq!(spec.duration, SimDuration::from_ps(1_500_000_000));
        assert_eq!(
            spec.topology,
            Topology::TwoSwitch {
                upstream: 1,
                downstream: 2
            }
        );
    }

    #[test]
    fn custom_topology_checks_references() {
        let e = ScenarioSpec::parse(
            "[topology]\nkind = \"custom\"\nswitches = 2\nhost_attachments = [0, 5]",
        )
        .unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        let e = ScenarioSpec::parse(
            "[topology]\nkind = \"custom\"\nswitches = 2\nhost_attachments = [0, 1]\n\
             trunks = [[0, 3]]",
        )
        .unwrap_err();
        assert_eq!(e.line, 5, "{e}");
    }
}
