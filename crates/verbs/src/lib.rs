//! The RDMA verbs layer: the software-visible abstractions of an
//! InfiniBand channel adapter.
//!
//! This crate mirrors the subset of `libibverbs` the paper's tools exercise:
//!
//! * [`SendWr`] / [`RecvWr`] — work requests, with the verb/transport
//!   validity matrix of Section II (UD supports only two-sided verbs; RC
//!   supports SEND/RECV, WRITE and READ).
//! * [`QueuePair`] — per-QP queues and requester/responder protocol state
//!   (outstanding messages, completion rules per Fig. 1 of the paper).
//! * [`CompletionQueue`] / [`Cqe`] — the asynchronous completion channel
//!   applications poll.
//!
//! The *timing* of every transition lives in `rperf-rnic`; this crate owns
//! the *semantics* (what completes when, and with which ordering
//! guarantees), so the protocol rules are testable without a simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cq;
mod error;
mod qp;
mod wr;

pub use cq::{CompletionQueue, Cqe, CqeOpcode};
pub use error::VerbsError;
pub use qp::{CompletionRule, OutstandingMsg, QueuePair};
pub use wr::{RecvWr, SendWr, WrId};
