//! Completion queues.

use std::collections::VecDeque;

use rperf_model::QpNum;
use rperf_sim::SimTime;

use crate::wr::WrId;

/// What operation a completion reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CqeOpcode {
    /// A SEND work request completed (rules per transport, Fig. 1c/1d).
    Send,
    /// A WRITE work request completed (remote DMA acknowledged, Fig. 1b).
    Write,
    /// A READ work request completed (data landed locally, Fig. 1a).
    Read,
    /// An incoming SEND consumed a pre-posted RECV.
    Recv,
}

/// A completion queue entry, DMA-written by the RNIC and polled by software.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The identifier of the completed work request.
    pub wr_id: WrId,
    /// The queue pair the work request belonged to.
    pub qp: QpNum,
    /// Operation type.
    pub opcode: CqeOpcode,
    /// Bytes transferred.
    pub bytes: u64,
    /// Simulated instant at which the CQE became visible in host memory
    /// (i.e. after the RNIC's completion DMA write).
    pub visible_at: SimTime,
}

/// A software-visible completion queue.
///
/// The RNIC pushes entries ([`CompletionQueue::push`]); the application
/// drains them ([`CompletionQueue::poll`]). Entries pop in the order the
/// RNIC delivered them, which for a single QP follows IB's ordered
/// completion semantics.
///
/// # Examples
///
/// ```
/// use rperf_sim::SimTime;
/// use rperf_model::QpNum;
/// use rperf_verbs::{CompletionQueue, Cqe, CqeOpcode, WrId};
///
/// let mut cq = CompletionQueue::new();
/// cq.push(Cqe {
///     wr_id: WrId(1),
///     qp: QpNum::new(0),
///     opcode: CqeOpcode::Send,
///     bytes: 64,
///     visible_at: SimTime::from_ns(100),
/// });
/// assert_eq!(cq.poll().unwrap().wr_id, WrId(1));
/// assert!(cq.poll().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompletionQueue {
    entries: VecDeque<Cqe>,
    total_pushed: u64,
    max_depth: usize,
}

impl CompletionQueue {
    /// Creates an empty completion queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers a completion (RNIC side).
    pub fn push(&mut self, cqe: Cqe) {
        self.entries.push_back(cqe);
        self.total_pushed += 1;
        self.max_depth = self.max_depth.max(self.entries.len());
    }

    /// Retrieves the oldest completion, if any (application side).
    pub fn poll(&mut self) -> Option<Cqe> {
        self.entries.pop_front()
    }

    /// Entries currently waiting.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Total completions ever delivered.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// High-water mark of queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cqe(id: u64, t: u64) -> Cqe {
        Cqe {
            wr_id: WrId(id),
            qp: QpNum::new(0),
            opcode: CqeOpcode::Send,
            bytes: 0,
            visible_at: SimTime::from_ns(t),
        }
    }

    #[test]
    fn fifo_order() {
        let mut cq = CompletionQueue::new();
        cq.push(cqe(1, 10));
        cq.push(cqe(2, 20));
        assert_eq!(cq.poll().unwrap().wr_id, WrId(1));
        assert_eq!(cq.poll().unwrap().wr_id, WrId(2));
        assert!(cq.poll().is_none());
    }

    #[test]
    fn depth_accounting() {
        let mut cq = CompletionQueue::new();
        for i in 0..5 {
            cq.push(cqe(i, i));
        }
        assert_eq!(cq.depth(), 5);
        assert_eq!(cq.max_depth(), 5);
        cq.poll();
        assert_eq!(cq.depth(), 4);
        assert_eq!(cq.max_depth(), 5);
        assert_eq!(cq.total_pushed(), 5);
    }
}
