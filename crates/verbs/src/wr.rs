//! Work requests.

use rperf_model::{Lid, QpNum, ServiceLevel, Transport, Verb};

/// An application-chosen work-request identifier, echoed in the completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WrId(pub u64);

impl WrId {
    /// The raw identifier value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A send-queue work request: one SEND, WRITE or READ operation.
///
/// # Examples
///
/// ```
/// use rperf_model::{Lid, QpNum, ServiceLevel, Transport, Verb};
/// use rperf_verbs::{SendWr, WrId};
///
/// let wr = SendWr::new(WrId(1), Verb::Send, 64)
///     .to(Lid::new(2), QpNum::new(9))
///     .with_sl(ServiceLevel::new(1));
/// assert_eq!(wr.payload, 64);
/// assert!(wr.valid_for(Transport::Rc));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendWr {
    /// Application identifier echoed in the CQE.
    pub wr_id: WrId,
    /// Operation type.
    pub verb: Verb,
    /// Payload bytes (for READ: bytes to fetch from the remote).
    pub payload: u64,
    /// Destination end-port.
    pub remote: Lid,
    /// Destination queue pair.
    pub remote_qp: QpNum,
    /// Service level for the flow.
    pub sl: ServiceLevel,
    /// Whether a CQE should be generated on completion.
    pub signaled: bool,
    /// `true` to route through the RNIC-internal loopback path (a message
    /// from a host to itself via its own RNIC) — the mechanism RPerf uses
    /// to time local-side processing.
    pub loopback: bool,
}

impl SendWr {
    /// Creates a signaled work request with destination not yet set.
    pub fn new(wr_id: WrId, verb: Verb, payload: u64) -> Self {
        SendWr {
            wr_id,
            verb,
            payload,
            remote: Lid::new(0),
            remote_qp: QpNum::new(0),
            sl: ServiceLevel::new(0),
            signaled: true,
            loopback: false,
        }
    }

    /// Sets the destination (builder style).
    pub fn to(mut self, remote: Lid, remote_qp: QpNum) -> Self {
        self.remote = remote;
        self.remote_qp = remote_qp;
        self
    }

    /// Sets the service level (builder style).
    pub fn with_sl(mut self, sl: ServiceLevel) -> Self {
        self.sl = sl;
        self
    }

    /// Marks the request unsignaled (no CQE).
    pub fn unsignaled(mut self) -> Self {
        self.signaled = false;
        self
    }

    /// Marks the request as a loopback to the local RNIC.
    pub fn via_loopback(mut self) -> Self {
        self.loopback = true;
        self
    }

    /// Whether this verb is permitted on the given transport: UD provides
    /// only two-sided verbs; RC provides all (Section II-B of the paper).
    pub fn valid_for(&self, transport: Transport) -> bool {
        match transport {
            Transport::Rc => true,
            Transport::Ud => self.verb == Verb::Send,
        }
    }
}

/// A receive-queue work request (a pre-posted RECV buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvWr {
    /// Application identifier echoed in the CQE.
    pub wr_id: WrId,
    /// Buffer capacity in bytes.
    pub capacity: u64,
}

impl RecvWr {
    /// Creates a receive work request.
    pub fn new(wr_id: WrId, capacity: u64) -> Self {
        RecvWr { wr_id, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let wr = SendWr::new(WrId(7), Verb::Write, 4096)
            .to(Lid::new(3), QpNum::new(11))
            .with_sl(ServiceLevel::new(2))
            .unsignaled();
        assert_eq!(wr.remote, Lid::new(3));
        assert_eq!(wr.remote_qp, QpNum::new(11));
        assert_eq!(wr.sl, ServiceLevel::new(2));
        assert!(!wr.signaled);
        assert!(!wr.loopback);
    }

    #[test]
    fn ud_permits_only_send() {
        assert!(SendWr::new(WrId(0), Verb::Send, 1).valid_for(Transport::Ud));
        assert!(!SendWr::new(WrId(0), Verb::Write, 1).valid_for(Transport::Ud));
        assert!(!SendWr::new(WrId(0), Verb::Read, 1).valid_for(Transport::Ud));
    }

    #[test]
    fn rc_permits_all_verbs() {
        for verb in [Verb::Send, Verb::Write, Verb::Read] {
            assert!(SendWr::new(WrId(0), verb, 1).valid_for(Transport::Rc));
        }
    }

    #[test]
    fn loopback_flag() {
        let wr = SendWr::new(WrId(1), Verb::Send, 64).via_loopback();
        assert!(wr.loopback);
    }
}
