//! Queue pairs and transport protocol state.

use std::collections::{BTreeMap, VecDeque};

use rperf_model::{MsgId, QpNum, Transport, Verb};
use rperf_sim::SimTime;

use crate::error::VerbsError;
use crate::wr::{RecvWr, SendWr};

/// IB's maximum message size (2 GB).
pub const MAX_MESSAGE_BYTES: u64 = 1 << 31;

/// When the requester-side CQE for a work request may be generated —
/// the execution-path distinctions of Fig. 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionRule {
    /// As soon as the last packet is on the wire (UD SEND, Fig. 1c).
    OnWireExit,
    /// When the transport-level ACK returns (RC SEND and WRITE,
    /// Fig. 1b/1d).
    OnAck,
    /// When the response data has been DMA-written locally (READ, Fig. 1a).
    OnDataLanded,
}

/// A message handed to the RNIC engine and not yet completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingMsg {
    /// Fabric-wide message id.
    pub msg: MsgId,
    /// The originating work request.
    pub wr: SendWr,
    /// When software posted the request.
    pub posted_at: SimTime,
}

/// One side of an RDMA connection: send queue, receive queue and
/// requester/responder protocol state.
///
/// The queue pair is a *semantic* state machine: the RNIC model drives it
/// and attaches timing. All transitions validate protocol rules and return
/// [`VerbsError`] on violations.
///
/// # Examples
///
/// ```
/// use rperf_model::{Transport, Verb};
/// use rperf_verbs::{QueuePair, SendWr, WrId};
/// use rperf_model::QpNum;
///
/// let mut qp = QueuePair::new(QpNum::new(1), Transport::Rc);
/// qp.post_send(SendWr::new(WrId(1), Verb::Send, 64))?;
/// let wr = qp.pop_send().unwrap();
/// assert_eq!(wr.wr_id, WrId(1));
/// # Ok::<(), rperf_verbs::VerbsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueuePair {
    num: QpNum,
    transport: Transport,
    sq: VecDeque<SendWr>,
    rq: VecDeque<RecvWr>,
    outstanding: BTreeMap<u64, OutstandingMsg>,
    next_psn: u32,
    posted_sends: u64,
    completed_sends: u64,
}

impl QueuePair {
    /// Creates a queue pair.
    pub fn new(num: QpNum, transport: Transport) -> Self {
        QueuePair {
            num,
            transport,
            sq: VecDeque::new(),
            rq: VecDeque::new(),
            outstanding: BTreeMap::new(),
            next_psn: 0,
            posted_sends: 0,
            completed_sends: 0,
        }
    }

    /// The queue pair number.
    pub fn num(&self) -> QpNum {
        self.num
    }

    /// The transport type.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Posts a send-queue work request.
    ///
    /// # Errors
    ///
    /// * [`VerbsError::InvalidVerbForTransport`] for one-sided verbs on UD.
    /// * [`VerbsError::PayloadTooLarge`] beyond IB's 2 GB message limit.
    pub fn post_send(&mut self, wr: SendWr) -> Result<(), VerbsError> {
        if !wr.valid_for(self.transport) {
            return Err(VerbsError::InvalidVerbForTransport {
                verb: wr.verb,
                transport: self.transport,
            });
        }
        if wr.payload > MAX_MESSAGE_BYTES {
            return Err(VerbsError::PayloadTooLarge {
                requested: wr.payload,
                limit: MAX_MESSAGE_BYTES,
            });
        }
        self.sq.push_back(wr);
        self.posted_sends += 1;
        Ok(())
    }

    /// Posts a receive-queue work request.
    pub fn post_recv(&mut self, wr: RecvWr) {
        self.rq.push_back(wr);
    }

    /// Takes the next work request off the send queue (engine side).
    pub fn pop_send(&mut self) -> Option<SendWr> {
        self.sq.pop_front()
    }

    /// Pending send-queue depth.
    pub fn sq_depth(&self) -> usize {
        self.sq.len()
    }

    /// Pending receive-queue depth.
    pub fn rq_depth(&self) -> usize {
        self.rq.len()
    }

    /// Outstanding (sent, unacknowledged) messages.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Allocates the next packet sequence number range for `n` packets.
    pub fn take_psns(&mut self, n: u32) -> u32 {
        let first = self.next_psn;
        self.next_psn = self.next_psn.wrapping_add(n);
        first
    }

    /// Registers a message the engine has started transmitting.
    pub fn register_outstanding(&mut self, msg: MsgId, wr: SendWr, posted_at: SimTime) {
        self.outstanding
            .insert(msg.raw(), OutstandingMsg { msg, wr, posted_at });
    }

    /// Resolves an ACK (or READ-response completion) against an outstanding
    /// message.
    ///
    /// # Errors
    ///
    /// [`VerbsError::UnknownMessage`] if the message was never registered —
    /// a duplicate or misrouted ACK.
    pub fn complete(&mut self, msg: MsgId) -> Result<OutstandingMsg, VerbsError> {
        let out = self
            .outstanding
            .remove(&msg.raw())
            .ok_or(VerbsError::UnknownMessage { qp: self.num })?;
        self.completed_sends += 1;
        Ok(out)
    }

    /// Consumes a pre-posted RECV for an incoming SEND.
    ///
    /// # Errors
    ///
    /// [`VerbsError::ReceiverNotReady`] if the receive queue is empty.
    pub fn consume_recv(&mut self) -> Result<RecvWr, VerbsError> {
        self.rq
            .pop_front()
            .ok_or(VerbsError::ReceiverNotReady { qp: self.num })
    }

    /// The requester completion rule for a work request on this QP
    /// (Fig. 1 of the paper).
    pub fn completion_rule(&self, wr: &SendWr) -> CompletionRule {
        match (self.transport, wr.verb) {
            (Transport::Ud, _) => CompletionRule::OnWireExit,
            (Transport::Rc, Verb::Read) => CompletionRule::OnDataLanded,
            (Transport::Rc, _) => CompletionRule::OnAck,
        }
    }

    /// Total send work requests ever posted.
    pub fn posted_sends(&self) -> u64 {
        self.posted_sends
    }

    /// Total send work requests ever completed.
    pub fn completed_sends(&self) -> u64 {
        self.completed_sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wr::WrId;

    fn rc_qp() -> QueuePair {
        QueuePair::new(QpNum::new(1), Transport::Rc)
    }

    #[test]
    fn post_pop_fifo() {
        let mut qp = rc_qp();
        qp.post_send(SendWr::new(WrId(1), Verb::Send, 64)).unwrap();
        qp.post_send(SendWr::new(WrId(2), Verb::Send, 64)).unwrap();
        assert_eq!(qp.sq_depth(), 2);
        assert_eq!(qp.pop_send().unwrap().wr_id, WrId(1));
        assert_eq!(qp.pop_send().unwrap().wr_id, WrId(2));
        assert!(qp.pop_send().is_none());
    }

    #[test]
    fn ud_rejects_one_sided() {
        let mut qp = QueuePair::new(QpNum::new(2), Transport::Ud);
        let err = qp
            .post_send(SendWr::new(WrId(1), Verb::Write, 64))
            .unwrap_err();
        assert!(matches!(err, VerbsError::InvalidVerbForTransport { .. }));
        assert!(qp.post_send(SendWr::new(WrId(1), Verb::Send, 64)).is_ok());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut qp = rc_qp();
        let err = qp
            .post_send(SendWr::new(WrId(1), Verb::Send, MAX_MESSAGE_BYTES + 1))
            .unwrap_err();
        assert!(matches!(err, VerbsError::PayloadTooLarge { .. }));
    }

    #[test]
    fn outstanding_lifecycle() {
        let mut qp = rc_qp();
        let wr = SendWr::new(WrId(9), Verb::Send, 64);
        qp.register_outstanding(MsgId::new(5), wr, SimTime::from_ns(1));
        assert_eq!(qp.outstanding(), 1);
        let done = qp.complete(MsgId::new(5)).unwrap();
        assert_eq!(done.wr.wr_id, WrId(9));
        assert_eq!(qp.outstanding(), 0);
        assert_eq!(qp.completed_sends(), 1);
    }

    #[test]
    fn duplicate_ack_is_an_error() {
        let mut qp = rc_qp();
        qp.register_outstanding(
            MsgId::new(5),
            SendWr::new(WrId(1), Verb::Send, 64),
            SimTime::ZERO,
        );
        qp.complete(MsgId::new(5)).unwrap();
        assert!(matches!(
            qp.complete(MsgId::new(5)),
            Err(VerbsError::UnknownMessage { .. })
        ));
    }

    #[test]
    fn recv_consumption_in_order() {
        let mut qp = rc_qp();
        qp.post_recv(RecvWr::new(WrId(10), 4096));
        qp.post_recv(RecvWr::new(WrId(11), 4096));
        assert_eq!(qp.consume_recv().unwrap().wr_id, WrId(10));
        assert_eq!(qp.consume_recv().unwrap().wr_id, WrId(11));
        assert!(matches!(
            qp.consume_recv(),
            Err(VerbsError::ReceiverNotReady { .. })
        ));
    }

    #[test]
    fn completion_rules_match_fig1() {
        let rc = rc_qp();
        let ud = QueuePair::new(QpNum::new(3), Transport::Ud);
        let send = SendWr::new(WrId(0), Verb::Send, 1);
        let write = SendWr::new(WrId(0), Verb::Write, 1);
        let read = SendWr::new(WrId(0), Verb::Read, 1);
        assert_eq!(ud.completion_rule(&send), CompletionRule::OnWireExit);
        assert_eq!(rc.completion_rule(&send), CompletionRule::OnAck);
        assert_eq!(rc.completion_rule(&write), CompletionRule::OnAck);
        assert_eq!(rc.completion_rule(&read), CompletionRule::OnDataLanded);
    }

    #[test]
    fn psn_allocation_is_contiguous() {
        let mut qp = rc_qp();
        assert_eq!(qp.take_psns(4), 0);
        assert_eq!(qp.take_psns(2), 4);
        assert_eq!(qp.take_psns(1), 6);
    }

    #[test]
    fn psn_wraps() {
        let mut qp = rc_qp();
        qp.take_psns(u32::MAX);
        let next = qp.take_psns(2);
        assert_eq!(next, u32::MAX);
    }
}
