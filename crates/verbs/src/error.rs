//! Verbs-layer errors.

use std::error::Error;
use std::fmt;

use rperf_model::{QpNum, Transport, Verb};

/// Errors returned by verbs-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// The verb is not supported on the queue pair's transport (e.g. a
    /// one-sided WRITE on a UD queue pair).
    InvalidVerbForTransport {
        /// The offending verb.
        verb: Verb,
        /// The queue pair's transport.
        transport: Transport,
    },
    /// An incoming SEND arrived but no RECV was pre-posted — on a real RC
    /// fabric this triggers RNR (receiver-not-ready) back-pressure.
    ReceiverNotReady {
        /// The destination queue pair.
        qp: QpNum,
    },
    /// A completion or ACK referenced a message the QP does not consider
    /// outstanding — a protocol bug.
    UnknownMessage {
        /// The destination queue pair.
        qp: QpNum,
    },
    /// The payload exceeds what a single work request may carry.
    PayloadTooLarge {
        /// Requested bytes.
        requested: u64,
        /// Maximum message size.
        limit: u64,
    },
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidVerbForTransport { verb, transport } => {
                write!(
                    f,
                    "verb {verb:?} is not supported on {transport:?} transport"
                )
            }
            VerbsError::ReceiverNotReady { qp } => {
                write!(f, "no receive work request posted on {qp}")
            }
            VerbsError::UnknownMessage { qp } => {
                write!(f, "completion for unknown message on {qp}")
            }
            VerbsError::PayloadTooLarge { requested, limit } => {
                write!(
                    f,
                    "payload of {requested} bytes exceeds limit of {limit} bytes"
                )
            }
        }
    }
}

impl Error for VerbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        let e = VerbsError::InvalidVerbForTransport {
            verb: Verb::Write,
            transport: Transport::Ud,
        };
        let s = e.to_string();
        assert!(s.contains("not supported"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VerbsError>();
    }
}
