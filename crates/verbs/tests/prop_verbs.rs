//! Property tests for the verbs protocol state machines.

use proptest::prelude::*;
use rperf_model::{MsgId, QpNum, Transport, Verb};
use rperf_sim::SimTime;
use rperf_verbs::{QueuePair, RecvWr, SendWr, WrId};

proptest! {
    /// Send-queue FIFO: posted order equals pop order, regardless of the
    /// interleaving of posts and pops.
    #[test]
    fn sq_is_fifo(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut qp = QueuePair::new(QpNum::new(1), Transport::Rc);
        let mut next_post = 0u64;
        let mut next_pop = 0u64;
        for post in ops {
            if post {
                qp.post_send(SendWr::new(WrId(next_post), Verb::Send, 64)).unwrap();
                next_post += 1;
            } else if let Some(wr) = qp.pop_send() {
                prop_assert_eq!(wr.wr_id, WrId(next_pop));
                next_pop += 1;
            }
        }
        prop_assert_eq!(qp.sq_depth() as u64, next_post - next_pop);
    }

    /// Completion conservation: every registered message completes exactly
    /// once; duplicates and unknowns error without corrupting state.
    #[test]
    fn outstanding_complete_exactly_once(ids in prop::collection::vec(0u64..64, 1..100)) {
        let mut qp = QueuePair::new(QpNum::new(1), Transport::Rc);
        let mut registered = std::collections::BTreeSet::new();
        for &id in &ids {
            if registered.insert(id) {
                qp.register_outstanding(
                    MsgId::new(id),
                    SendWr::new(WrId(id), Verb::Send, 64),
                    SimTime::ZERO,
                );
            }
        }
        prop_assert_eq!(qp.outstanding(), registered.len());
        for (completed, &id) in registered.iter().enumerate() {
            prop_assert!(qp.complete(MsgId::new(id)).is_ok());
            // Completing again must fail and not change counts.
            prop_assert!(qp.complete(MsgId::new(id)).is_err());
            prop_assert_eq!(qp.completed_sends(), completed as u64 + 1);
        }
        prop_assert_eq!(qp.outstanding(), 0);
    }

    /// RECVs are consumed in posting order and never invented.
    #[test]
    fn rq_conservation(posts in 0usize..50, consumes in 0usize..80) {
        let mut qp = QueuePair::new(QpNum::new(1), Transport::Rc);
        for i in 0..posts {
            qp.post_recv(RecvWr::new(WrId(i as u64), 4096));
        }
        let mut got = 0usize;
        for _ in 0..consumes {
            match qp.consume_recv() {
                Ok(wr) => {
                    prop_assert_eq!(wr.wr_id, WrId(got as u64));
                    got += 1;
                }
                Err(_) => prop_assert!(got >= posts, "RNR only when drained"),
            }
        }
        prop_assert_eq!(got, posts.min(consumes));
    }

    /// PSN windows never overlap for successive allocations.
    #[test]
    fn psn_windows_disjoint(sizes in prop::collection::vec(1u32..1_000, 1..50)) {
        let mut qp = QueuePair::new(QpNum::new(1), Transport::Rc);
        let mut expected = 0u32;
        for &n in &sizes {
            let first = qp.take_psns(n);
            prop_assert_eq!(first, expected);
            expected = expected.wrapping_add(n);
        }
    }

    /// The verb/transport validity matrix is total and matches Section II.
    #[test]
    fn verb_transport_matrix(
        payload in 0u64..1_000_000,
        verb in prop::sample::select(vec![Verb::Send, Verb::Write, Verb::Read]),
    ) {
        let mut rc = QueuePair::new(QpNum::new(1), Transport::Rc);
        let mut ud = QueuePair::new(QpNum::new(2), Transport::Ud);
        let wr = SendWr::new(WrId(0), verb, payload);
        prop_assert!(rc.post_send(wr).is_ok());
        prop_assert_eq!(ud.post_send(wr).is_ok(), verb == Verb::Send);
    }
}
