//! A minimal micro-benchmark harness exposing the subset of the
//! `criterion` crate's surface this workspace uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be vendored; this stand-in keeps the `benches/` files compiling
//! and producing useful numbers. Per benchmark it runs a warm-up pass,
//! then `sample_size` timed samples (each sample auto-scales its iteration
//! count to last ≳ 10 ms), and prints min / median / mean sample times.
//!
//! There is no statistical regression machinery: treat the printed medians
//! as the comparable figure between runs on the same machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to each target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up + calibration: grow the per-sample iteration count until
        // one sample costs at least ~10 ms (or we hit a cap).
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || b.iters >= 1 << 20 {
                break;
            }
            b.iters *= 2;
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed / b.iters as u32);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "bench {name:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples × {} iters)",
            min,
            median,
            mean,
            samples.len(),
            b.iters
        );
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this sample's iteration count, timing the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark targets (`name`, optional `config`).
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            $(
                let mut c: $crate::Criterion = $cfg;
                $target(&mut c);
            )+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    #[test]
    fn harness_runs_a_benchmark() {
        let mut c = Criterion::default().sample_size(3);
        tiny(&mut c);
    }

    criterion_group! {
        name = group_smoke;
        config = Criterion::default().sample_size(2);
        targets = tiny
    }

    #[test]
    fn group_macro_expands_and_runs() {
        group_smoke();
    }
}
