# Developer entry points. `make ci` is the gate every change must pass;
# it is what .github/workflows/ci.yml runs.

CARGO ?= cargo

.PHONY: ci fmt lint build test bench bench-smoke report quick-report

ci: fmt lint build test

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

bench:
	$(CARGO) bench --workspace

# Regenerates EXPERIMENTS.md + BENCH_report.json at full effort.
report:
	$(CARGO) run --release -p rperf-bench --bin report -- --jobs $(shell nproc)

quick-report:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs $(shell nproc)

# CI smoke: report on the reduced (--quick) point set, single job for
# determinism. Fails if any packet handle leaks; BENCH_report.json is
# uploaded as a workflow artifact.
bench-smoke:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs 1
