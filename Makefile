# Developer entry points. `make ci` is the gate every change must pass;
# it is what .github/workflows/ci.yml runs.

CARGO ?= cargo

.PHONY: ci fmt lint lint-invariants sanitize-smoke build test bench bench-smoke bench-bless prof-report report quick-report scenario-smoke shard-smoke clos-smoke perf-gate serve serve-smoke

ci: fmt lint lint-invariants build test shard-smoke clos-smoke perf-gate

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Workspace invariant linter (rperf-lint, DESIGN.md §5): token rules
# D1-D10 plus the interprocedural rules I1-I4 over the workspace call
# graph, configured by the checked-in lint.toml. --ci additionally
# writes LINT_report.json (machine-readable diagnostics) for the CI
# artifact next to BENCH_report.json.
lint-invariants:
	$(CARGO) run --release -q -p rperf-lint -- --ci

# One figure sweep with the sim-sanitizer feature's runtime invariant
# checks (packet conservation, credit bounds, event-time monotonicity).
# Dev profile on purpose: the checks are debug_assert!-based.
sanitize-smoke:
	$(CARGO) run -q -p rperf-bench --bin figure --features sim-sanitizer -- --fig 4 --quick > /dev/null

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

bench:
	$(CARGO) bench --workspace

# Regenerates EXPERIMENTS.md + BENCH_report.json at full effort.
report:
	$(CARGO) run --release -p rperf-bench --bin report -- --jobs $(shell nproc)

quick-report:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs $(shell nproc)

# CI smoke: report on the reduced (--quick) point set, single job for
# determinism, then the two dispatch-layer microbench races (per-event
# vs batched link delivery; AoS vs SoA buffer scans at 8/36/64 ports).
# Fails if any packet handle leaks; BENCH_report.json is uploaded as a
# workflow artifact.
bench-smoke:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs 1
	$(CARGO) bench -p rperf-fabric --bench link_delivery
	$(CARGO) bench -p rperf-switch --bench soa_scan

# Re-blesses the perf baseline: discards BENCH_baseline.json and
# rebuilds it as the per-figure minimum over BLESS_RUNS quick report
# runs (min-over-N filters scheduler noise out of the floor — the same
# estimator `timed` in report.rs applies to sub-second figures within a
# run). Run after an intentional perf change, then commit the file.
BLESS_RUNS ?= 3
bench-bless:
	rm -f BENCH_baseline.json
	for i in $$(seq $(BLESS_RUNS)); do \
		$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs 1 --bless; \
	done

# Per-event-kind dispatch attribution (sim-prof feature). All outputs
# are redirected to /tmp — the profiled run's wall times are perturbed
# by the counters and must never feed the committed report or the gate —
# and only the BENCH_prof.json sidecar is copied back for the CI
# artifact upload. Runs sharded (--shards 2) so the sidecar's per-shard
# rows (events, barrier-wait nanos, mailbox traffic) are populated and
# attribute where sharded runs lose time.
prof-report:
	$(CARGO) run --release -p rperf-bench --features sim-prof --bin report -- --quick --jobs 1 --shards 2 --prof --out /tmp/rperf_prof_experiments.md
	cp /tmp/BENCH_prof.json BENCH_prof.json

# Perf-regression gate: rerun the reduced report single-job and fail if
# any figure (or the aggregate) falls more than 10% below the committed
# BENCH_baseline.json (sub-second figures get a noise-widened tolerance;
# see report.rs), or if a per-figure balance floor is missed
# (fig4/fig11/fig12 each >= 60% of the run's aggregate rate;
# fig8_fig9 >= 45% — its denser packet/credit/CQE mix makes ~55% its
# natural ceiling, see FLOOR_FIGS in report.rs). Re-bless after an
# intentional perf change with `make bench-bless`.
perf-gate:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs 1 --gate 10

# CI smoke: run the beyond-paper example scenarios end-to-end from their
# spec files and check the emitted JSON parses, then assert the typed
# exit codes: missing file -> 3 (I/O), syntax error -> 2 (spec parse)
# with a line-numbered diagnostic on stderr.
scenario-smoke:
	$(CARGO) run --release -p rperf-cli -- scenario examples/scenarios/chain_gaming.scn --json | python3 -m json.tool > /dev/null
	$(CARGO) run --release -p rperf-cli -- scenario examples/scenarios/incast_8.scn --json | python3 -m json.tool > /dev/null
	$(CARGO) run --release -q -p rperf-cli -- scenario /nonexistent/missing.scn 2>/dev/null; test $$? -eq 3
	printf 'name = "x"\nbogus_key = 1\n' > /tmp/rperf_smoke_bad.scn
	$(CARGO) run --release -q -p rperf-cli -- scenario /tmp/rperf_smoke_bad.scn 2>/tmp/rperf_smoke_bad.err; test $$? -eq 2
	grep -q 'line 2' /tmp/rperf_smoke_bad.err

# Sharded-execution smoke, three gates:
#  1. the golden-figure differential suite (every paper figure at
#     --shards 2 and 4, byte-compared against the shards=1 goldens) —
#     release profile because the sparse sweeps pay barrier costs per
#     nanosecond window (the tests are #[ignore]d in the dev suite);
#  2. the large fanout_30 scenario plus both example scenarios must be
#     byte-identical between --shards 1 and --shards 4;
#  3. on hosts with >= 4 CPUs the sharded fanout_30 run must beat the
#     sequential one by SHARD_SMOKE_MIN_SPEEDUP x wall-clock (skipped on
#     smaller hosts, where conservative window barriers can only add
#     overhead). See scripts/shard_smoke.sh.
SHARD_SMOKE_MIN_SPEEDUP ?= 2.0
shard-smoke:
	$(CARGO) test -q --release -p rperf-bench --test shard_differential -- --include-ignored
	SHARD_SMOKE_MIN_SPEEDUP=$(SHARD_SMOKE_MIN_SPEEDUP) bash scripts/shard_smoke.sh

# Fat-tree/Clos smoke, three gates (scripts/clos_smoke.sh):
#  1. both committed fat-tree example scenarios run end-to-end from
#     their spec files alone and `--dump-routes` prints byte-identical
#     per-switch tables on repeated invocations;
#  2. a generated 128-host k=8 leaf-spine incast is byte-identical
#     between --shards 1 and --shards 4;
#  3. on hosts with >= 4 CPUs the sharded k=8 run must beat the
#     sequential one by CLOS_SMOKE_MIN_SPEEDUP x wall-clock.
CLOS_SMOKE_MIN_SPEEDUP ?= 1.5
clos-smoke:
	CLOS_SMOKE_MIN_SPEEDUP=$(CLOS_SMOKE_MIN_SPEEDUP) bash scripts/clos_smoke.sh

# Runs the scenario service in the foreground on the default port
# (stop it with `rperf-cli serve-stats --shutdown`).
serve:
	$(CARGO) run --release -p rperf-serve

# CI smoke for the serving layer: wire-protocol property tests, the
# deterministic chaos suite (worker panic, truncated/stalled clients,
# overload shedding, budget deadlines, drain), and 200 concurrent
# submissions against a live server with injected faults, asserting
# typed responses, cache hits, and byte-identical outcomes.
serve-smoke:
	$(CARGO) test -q --release -p rperf-serve --test proto_prop --test chaos --test smoke

# The historical per-figure binaries (fig4 … fig13) are aliases onto the
# single `figure` binary: `make fig7`, `make fig13 ARGS="--quick"`.
fig%:
	$(CARGO) run --release -p rperf-bench --bin figure -- --fig $* $(ARGS)
