# Developer entry points. `make ci` is the gate every change must pass;
# it is what .github/workflows/ci.yml runs.

CARGO ?= cargo

.PHONY: ci fmt lint lint-invariants sanitize-smoke build test bench bench-smoke report quick-report scenario-smoke

ci: fmt lint lint-invariants build test

fmt:
	$(CARGO) fmt --all --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Workspace invariant linter (rperf-lint, DESIGN.md §5): determinism and
# hot-loop rules D1-D8, configured by the checked-in lint.toml.
lint-invariants:
	$(CARGO) run --release -q -p rperf-lint

# One figure sweep with the sim-sanitizer feature's runtime invariant
# checks (packet conservation, credit bounds, event-time monotonicity).
# Dev profile on purpose: the checks are debug_assert!-based.
sanitize-smoke:
	$(CARGO) run -q -p rperf-bench --bin figure --features sim-sanitizer -- --fig 4 --quick > /dev/null

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

bench:
	$(CARGO) bench --workspace

# Regenerates EXPERIMENTS.md + BENCH_report.json at full effort.
report:
	$(CARGO) run --release -p rperf-bench --bin report -- --jobs $(shell nproc)

quick-report:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs $(shell nproc)

# CI smoke: report on the reduced (--quick) point set, single job for
# determinism. Fails if any packet handle leaks; BENCH_report.json is
# uploaded as a workflow artifact.
bench-smoke:
	$(CARGO) run --release -p rperf-bench --bin report -- --quick --jobs 1

# CI smoke: run the beyond-paper example scenarios end-to-end from their
# spec files and check the emitted JSON parses.
scenario-smoke:
	$(CARGO) run --release -p rperf-cli -- scenario examples/scenarios/chain_gaming.scn --json | python3 -m json.tool > /dev/null
	$(CARGO) run --release -p rperf-cli -- scenario examples/scenarios/incast_8.scn --json | python3 -m json.tool > /dev/null

# The historical per-figure binaries (fig4 … fig13) are aliases onto the
# single `figure` binary: `make fig7`, `make fig13 ARGS="--quick"`.
fig%:
	$(CARGO) run --release -p rperf-bench --bin figure -- --fig $* $(ARGS)
